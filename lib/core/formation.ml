(* Convergent hyperblock formation (Figure 5 of the paper).

   [expand_block] grows a seed block by repeatedly selecting a candidate
   successor (policy-driven), trial-merging it, optimizing the merged
   block when the configuration says to, and committing only when the
   TRIPS structural constraints still hold.  [MergeBlocks]'s case split is
   implemented in [classify]:

   - unique predecessor: plain merge, the successor block disappears;
   - [HB -> S] is a self back edge ([HB = S]): unrolling by head
     duplication — a copy of the *saved one-iteration body* is merged, so
     each unroll appends one iteration rather than doubling (Section 4.1);
   - S is a loop header reached over a non-back edge: peeling by head
     duplication;
   - otherwise: classical tail duplication.

   All three duplication flavors go through the single [Combine] merge
   primitive applied to a fresh copy of S whose exits still name the
   original targets; the copy never exists as a separate CFG block, so
   the CFG never grows and termination is easy to see.

   Instead of the paper's scratch-space trial, we install the merged
   block, recompute liveness, optimize and constraint-check, and roll the
   installation back on failure — observably identical, but it gives the
   optimizer and the size estimator exact liveness information.

   Convergence: candidates that failed only because the block was too
   full are retried after further merges and optimizations shrink the
   block ("repeatedly applies scalar optimizations until it cannot add
   any block"). *)

open Trips_ir
open Trips_analysis
open Trips_profile
open Trips_transform

type stats = {
  mutable merges : int;  (* m: successful merges of any kind *)
  mutable tail_dups : int;  (* t *)
  mutable unrolls : int;  (* u *)
  mutable peels : int;  (* p *)
  mutable attempts : int;
  mutable size_rejections : int;
  mutable combine_failures : int;  (* structural Cannot_combine rejections *)
  mutable block_splits : int;  (* Section 9 extension, when enabled *)
}

let empty_stats () =
  {
    merges = 0;
    tail_dups = 0;
    unrolls = 0;
    peels = 0;
    attempts = 0;
    size_rejections = 0;
    combine_failures = 0;
    block_splits = 0;
  }

let pp_stats fmt s =
  Fmt.pf fmt "%d/%d/%d/%d" s.merges s.tail_dups s.unrolls s.peels

let publish_metrics (s : stats) =
  let open Trips_obs in
  Metrics.incr ~by:s.merges "formation.merges";
  Metrics.incr ~by:s.tail_dups "formation.tail_dups";
  Metrics.incr ~by:s.unrolls "formation.unrolls";
  Metrics.incr ~by:s.peels "formation.peels";
  Metrics.incr ~by:s.attempts "formation.attempts";
  Metrics.incr ~by:s.size_rejections "formation.reject.size";
  Metrics.incr ~by:s.combine_failures "formation.reject.structural";
  Metrics.incr ~by:s.block_splits "formation.block_splits"

type merge_kind = Simple | Unroll | Peel | Tail_dup

let kind_name = function
  | Simple -> "simple"
  | Unroll -> "unroll"
  | Peel -> "peel"
  | Tail_dup -> "tail_dup"

(* Which of the formation fast paths are enabled.  Each has its own
   [TRIPS_NO_*] escape hatch (set to any non-empty string to disable)
   for bisection and for the per-piece attribution in [bench formation];
   with every hatch set, formation runs the historical slow path.  All
   four are output-invariant: traces, stats and the final CFG are
   byte-identical either way (enforced by the equivalence property
   test). *)
type fast_paths = {
  prefilter : bool;  (* constraint lower-bound pre-filter *)
  incr_liveness : bool;  (* Liveness.update instead of full compute *)
  loop_reuse : bool;  (* loop forest / predecessor map keyed by edge version *)
  cand_pool : bool;  (* indexed candidate pool *)
  trial_cache : bool;  (* versioned trial-verdict cache *)
  spec_trials : bool;  (* speculative parallel trials feeding the cache *)
}

(* How often each fast path actually fired; exported as the
   [formation.prefilter.hits] / [formation.liveness.incremental] /
   [formation.loops.reuse] / [formation.trials.*] metrics by [run]. *)
type perf_counters = {
  mutable prefilter_hits : int;
  mutable live_incremental : int;
  mutable loops_reuse : int;
  mutable trials_spec : int;  (* speculative trials submitted *)
  mutable trials_cached : int;  (* verdicts served from the cache *)
  mutable trials_wasted : int;  (* speculative trials never served *)
}

type state = {
  cfg : Cfg.t;
  profile : Profile.t;
  config : Policy.config;
  stats : stats;
  finalized : (int, unit) Hashtbl.t;
  saved_bodies : (int, Block.t) Hashtbl.t;  (* loop block -> 1-iteration body *)
  peels_done : (int, int) Hashtbl.t;  (* header -> peeled iterations *)
  unrolls_done : (int, int) Hashtbl.t;  (* loop block -> appended iterations *)
  mutable version : int;  (* bumped on every CFG change *)
  mutable commit_epoch : int;
      (* bumped only at commit points (merge install, split, prune) — a
         failed trial's rollback keeps it, so everything a trial could
         read is constant within one epoch; the trial-verdict cache keys
         on it *)
  mutable edge_version : int;
      (* bumped only when a successor list may have changed; body-only
         rewrites (the optimizer shrinking a block in place) keep it, so
         edge-keyed caches survive them *)
  mutable loops_cache : (int * int * Loops.t) option;
      (* (edge_version, version) at which the forest was last validated *)
  mutable preds_cache : (int * IntSet.t IntMap.t) option;
      (* predecessor map keyed by edge_version *)
  mutable live_cache : (int * Liveness.t) option;
  mutable live_dirty : IntSet.t;
      (* blocks edited (or removed) since [live_cache] was solved; the
         seeds for the next incremental [Liveness.update] *)
  live_gk : Liveness.gk_cache option;  (* gen/kill memo across recomputations *)
  floors : (int, Block.t * Constraints.floor) Hashtbl.t;
      (* pre-filter floor per block id, revalidated by physical equality
         with the installed block (so [Cfg.set_block] invalidates it) *)
  body_floors : (int, Block.t * Constraints.floor) Hashtbl.t;
      (* same, for the saved one-iteration unroll bodies *)
  fast : fast_paths;
  perf : perf_counters;
}

(* [TRIPS_NO_X] convention: any non-empty value disables the feature. *)
let hatch_enabled name =
  match Sys.getenv_opt name with
  | Some s when s <> "" -> false
  | Some _ | None -> true

let make config cfg profile =
  {
    cfg;
    profile;
    config;
    stats = empty_stats ();
    finalized = Hashtbl.create 64;
    saved_bodies = Hashtbl.create 8;
    peels_done = Hashtbl.create 8;
    unrolls_done = Hashtbl.create 8;
    version = 0;
    commit_epoch = 0;
    edge_version = 0;
    loops_cache = None;
    preds_cache = None;
    live_cache = None;
    live_dirty = IntSet.empty;
    (* escape hatch for bisecting memo-related issues, and for benchmarks
       that want to price the memo itself (see bench sweep) *)
    live_gk =
      (match Sys.getenv_opt "TRIPS_NO_LIVENESS_MEMO" with
      | Some s when s <> "" -> None
      | Some _ | None -> Some (Liveness.gk_cache ()));
    floors = Hashtbl.create 64;
    body_floors = Hashtbl.create 8;
    fast =
      {
        prefilter = hatch_enabled "TRIPS_NO_PREFILTER";
        incr_liveness = hatch_enabled "TRIPS_NO_INCR_LIVENESS";
        loop_reuse = hatch_enabled "TRIPS_NO_LOOP_REUSE";
        cand_pool = hatch_enabled "TRIPS_NO_CAND_POOL";
        trial_cache = hatch_enabled "TRIPS_NO_TRIAL_CACHE";
        spec_trials = hatch_enabled "TRIPS_NO_SPEC_TRIALS";
      };
    perf =
      {
        prefilter_hits = 0;
        live_incremental = 0;
        loops_reuse = 0;
        trials_spec = 0;
        trials_cached = 0;
        trials_wasted = 0;
      };
  }

(* ---- speculation scheduler -------------------------------------------- *)

(* Formation cannot depend on the harness (the dependency runs the other
   way), so the worker pool is injected: the harness installs a
   [scheduler] whose [spawn] submits a cancellable thunk to its resident
   [Engine.Pool].  With no scheduler installed (the default) formation
   never speculates and the cache sees no writes — zero overhead. *)
type spec_task = {
  cancel : unit -> unit;
      (* best-effort: a task not yet started never runs; one already
         running completes and is ignored *)
  join : unit -> unit;
      (* wait for completion (or cancellation); establishes the
         happens-before edge on the thunk's writes *)
}

type scheduler = { spawn : (unit -> unit) -> spec_task }

(* Runs the thunk immediately on the calling domain: speculation without
   parallelism, for tests and single-core fallbacks. *)
let inline_scheduler =
  {
    spawn =
      (fun f ->
        f ();
        { cancel = ignore; join = ignore });
  }

let scheduler_ref : scheduler option ref = ref None
let spec_trials_ref = ref 4
let set_scheduler s = scheduler_ref := s
let set_spec_trials k = spec_trials_ref := max 0 k

(* Record a CFG edit that cannot have changed any successor list. *)
let touch_body st ids =
  st.version <- st.version + 1;
  st.live_dirty <- List.fold_left (fun s id -> IntSet.add id s) st.live_dirty ids

(* Record a CFG edit that may have rewired edges. *)
let touch_edges st ids =
  touch_body st ids;
  st.edge_version <- st.edge_version + 1

let loops st =
  (* With the reuse fast path the forest is keyed by [edge_version], so
     body-only touches revalidate for free; the hatch falls back to the
     historical every-touch keying. *)
  let key = if st.fast.loop_reuse then st.edge_version else st.version in
  match st.loops_cache with
  | Some (k, v, l) when k = key ->
    if v <> st.version then begin
      (* the historical keying would have recomputed here *)
      st.perf.loops_reuse <- st.perf.loops_reuse + 1;
      st.loops_cache <- Some (k, st.version, l)
    end;
    l
  | _ ->
    let l = Loops.compute st.cfg in
    st.loops_cache <- Some (key, st.version, l);
    l

(* Predecessor list of [id], same contents as [Cfg.predecessors] but
   served from an edge-versioned cached map instead of rebuilding the
   whole map per query (classify and the breadth-first selector both ask
   per candidate). *)
let preds st id =
  if not st.fast.loop_reuse then Cfg.predecessors st.cfg id
  else begin
    let map =
      match st.preds_cache with
      | Some (k, m) when k = st.edge_version -> m
      | _ ->
        let m = Cfg.predecessor_map st.cfg in
        st.preds_cache <- Some (st.edge_version, m);
        m
    in
    IntSet.elements (IntMap.find_or ~default:IntSet.empty id map)
  end

let liveness st =
  match st.live_cache with
  | Some (v, l) when v = st.version -> l
  | Some (_, l) when st.fast.incr_liveness ->
    (* re-solve only from the blocks edited since the last solution *)
    let touched = IntSet.elements st.live_dirty in
    let l = Liveness.update ?cache:st.live_gk l st.cfg ~touched in
    st.perf.live_incremental <- st.perf.live_incremental + 1;
    st.live_dirty <- IntSet.empty;
    st.live_cache <- Some (st.version, l);
    l
  | _ ->
    let l = Liveness.compute ?cache:st.live_gk st.cfg in
    st.live_dirty <- IntSet.empty;
    st.live_cache <- Some (st.version, l);
    l

exception Dirty_reachable

(* Exact live-out of [hb_id] without re-solving any fixpoint.
   [live_out hb = ∪ live_in succ], and a successor's live_in depends
   only on its forward cone — so when no successor can reach a block
   edited since the cached solution was solved (the dirty set, which
   after a trial install includes the hyperblock itself), the cached
   values are still exact and the union can be read off directly.  The
   reachability check is a forward DFS with a small node budget; on a
   hit or budget exhaustion we return [None] and the caller falls back
   to the incremental update.  This skips the whole ancestors-reset
   re-solve on the common straight-line merge trial, where successors
   sit strictly downstream; self-loops (unrolling) fail the check
   immediately and pay the full update as before. *)
let live_out_local st hb_id =
  match st.live_cache with
  | Some (_, l) when st.fast.incr_liveness ->
    let succs = Block.distinct_successors (Cfg.block st.cfg hb_id) in
    let target = IntSet.add hb_id st.live_dirty in
    let budget = ref 64 in
    let visited = Hashtbl.create 16 in
    let rec dfs id =
      if not (Hashtbl.mem visited id) then begin
        decr budget;
        if !budget < 0 || IntSet.mem id target then raise Dirty_reachable;
        Hashtbl.replace visited id ();
        List.iter dfs (Cfg.successors st.cfg id)
      end
    in
    (try
       List.iter dfs succs;
       st.perf.live_incremental <- st.perf.live_incremental + 1;
       Some
         (List.fold_left
            (fun acc s -> IntSet.union acc (Liveness.live_in l s))
            IntSet.empty succs)
     with Dirty_reachable -> None)
  | _ -> None

let counter tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)
let bump_counter tbl key = Hashtbl.replace tbl key (counter tbl key + 1)

(* ---- LegalMerge -------------------------------------------------------- *)

(* Classify the merge of successor [s_id] into [hb_id], or reject it.
   Mirrors lines 7-15 of MergeBlocks plus the policy's legality gates.
   [hb] may pass the already-fetched hyperblock record (the expansion
   loop holds it across attempts on an unchanged block). *)
let classify ?hb st ~hb_id ~s_id : merge_kind option =
  let cfg = st.cfg in
  let config = st.config in
  match Cfg.block_opt cfg s_id with
  | None -> None
  | Some s_blk ->
    if Hashtbl.mem st.finalized s_id && s_id <> hb_id then None
    else begin
      let hb = match hb with Some b -> b | None -> Cfg.block cfg hb_id in
      if not (List.mem s_id (Block.distinct_successors hb)) then None
      else if s_id = hb_id then
        (* self back edge: unrolling *)
        if
          config.Policy.enable_head_dup
          && counter st.unrolls_done hb_id < config.Policy.max_unroll
        then Some Unroll
        else None
      else begin
        let s_preds = preds st s_id in
        let lp = loops st in
        let is_header = Loops.is_loop_header lp s_id in
        let back_edge = Loops.is_back_edge lp ~src:hb_id ~dst:s_id in
        if s_preds = [ hb_id ] && s_id <> cfg.Cfg.entry then Some Simple
        else if is_header && not back_edge then
          if
            config.Policy.enable_head_dup
            && counter st.peels_done s_id < config.Policy.max_peel
            &&
            (* trip-count-histogram gate: peel iteration k only when enough
               entries run at least k iterations *)
            (match Profile.trip_histogram st.profile s_id with
            | [] -> true
            | _ ->
              Profile.trip_count_at_least st.profile s_id
                (counter st.peels_done s_id + 1)
              >= config.Policy.peel_coverage)
          then Some Peel
          else None
        else if
          config.Policy.enable_tail_dup
          && Block.size s_blk <= config.Policy.max_tail_dup_instrs
        then Some Tail_dup
        else None
      end
    end

(* ---- MergeBlocks ------------------------------------------------------- *)

(* Is the saved body still usable — every target either the loop block
   itself or still present? *)
let saved_body_valid st hb_id (b : Block.t) =
  List.for_all (fun t -> t = hb_id || Cfg.mem st.cfg t) (Block.successors b)

(* The saved one-iteration body for unrolling [hb_id]; re-saved if stale
   (a target of the saved body has since been merged away). *)
let body_for_unroll st hb_id =
  let current = Cfg.block st.cfg hb_id in
  match Hashtbl.find_opt st.saved_bodies hb_id with
  | Some b when saved_body_valid st hb_id b -> b
  | Some _ | None ->
    Hashtbl.replace st.saved_bodies hb_id current;
    current

(* What [body_for_unroll] would return, without its re-save side effect:
   the pre-filter must inspect the body before the trial's rollback
   snapshot exists, so it must not mutate [saved_bodies]. *)
let peek_body_for_unroll st hb_id =
  match Hashtbl.find_opt st.saved_bodies hb_id with
  | Some b when saved_body_valid st hb_id b -> b
  | Some _ | None -> Cfg.block st.cfg hb_id

type merge_outcome =
  | Success of Constraints.estimate
  | Structural_failure of string
  | Size_rejected of Constraints.estimate

(* Test-only fault injection: when set, a combine for which the function
   returns [true] fails as if [Combine.Cannot_combine] had been raised.
   Lets the chaos/property tests exercise the structural-failure paths
   (rollback, retry-pool exclusion) on demand. *)
let chaos_combine_failure :
    (hb_id:int -> s_id:int -> kind:merge_kind -> bool) option ref =
  ref None

(* Test-only soundness audit: when set, the pre-filter never shortcuts;
   instead every attempt runs the full trial and the hook receives the
   pre-filter lower bound alongside the true post-optimization estimate,
   so tests can assert [bound <= estimate] fieldwise for every attempted
   merge. *)
let prefilter_audit :
    (bound:Constraints.estimate -> est:Constraints.estimate -> unit) option ref
    =
  ref None

(* Pre-filter floor for [b], cached in [tbl] under [id] and revalidated
   by physical equality (blocks are immutable records, so the same
   record means the same floor). *)
let floor_in tbl id (b : Block.t) =
  match Hashtbl.find_opt tbl id with
  | Some (b0, f) when b0 == b -> f
  | _ ->
    let f = Constraints.block_floor b in
    Hashtbl.replace tbl id (b, f);
    f

(* Additive lower bound on the merged estimate of [s_id] into [hb]
   (DESIGN.md §12); [None] when neither the fast path nor the audit hook
   wants it. *)
let merge_bound st ~hb ~hb_id ~s_id ~kind =
  if not (st.fast.prefilter || !prefilter_audit <> None) then None
  else begin
    let fh = floor_in st.floors hb_id hb in
    let fs =
      match kind with
      | Unroll -> floor_in st.body_floors hb_id (peek_body_for_unroll st hb_id)
      | Simple | Tail_dup | Peel ->
        floor_in st.floors s_id (Cfg.block st.cfg s_id)
    in
    Some (Constraints.merge_lower_bound ~hb:fh ~s:fs)
  end

let zero_estimate =
  { Constraints.instrs = 0; loads_stores = 0; reads = 0; writes = 0 }

(* One trace event per merge attempt — the replayable decision log the
   convergence argument needs.  [outcome] is "success" or the reject
   reason ("structural" | "size" | "policy" | "budget"). *)
let emit_attempt st ~hb_id ~s_id ~depth ~prob ~classify ~outcome ~est ~msg =
  if Trips_obs.Trace.is_enabled () then begin
    let open Trips_obs.Trace in
    let l = st.config.Policy.limits in
    record "merge-attempt"
      [
        ("seed", Int hb_id);
        ("cand", Int s_id);
        ("depth", Int depth);
        ("prob", Float prob);
        ("classify", Str classify);
        ("outcome", Str outcome);
        ("est_instrs", Int est.Constraints.instrs);
        ("est_loads_stores", Int est.Constraints.loads_stores);
        ("est_reads", Int est.Constraints.reads);
        ("est_writes", Int est.Constraints.writes);
        ("max_instrs", Int l.Constraints.max_instrs);
        ("max_loads_stores", Int l.Constraints.max_load_store);
        ("max_reads", Int l.Constraints.max_reads);
        ("max_writes", Int l.Constraints.max_writes);
        ("slack", Int st.config.Policy.slack);
        ("msg", Str msg);
      ]
  end

let merge_blocks ?(depth = 0) ?(prob = 1.0) ?hb st ~hb_id ~s_id ~kind :
    merge_outcome =
  let cfg = st.cfg in
  let config = st.config in
  st.stats.attempts <- st.stats.attempts + 1;
  let hb = match hb with Some b -> b | None -> Cfg.block cfg hb_id in
  let emit = emit_attempt st ~hb_id ~s_id ~depth ~prob ~classify:(kind_name kind) in
  let bound = merge_bound st ~hb ~hb_id ~s_id ~kind in
  match bound with
  | Some b
    when !prefilter_audit = None
         && not
              (Constraints.legal ~slack:config.Policy.slack config.Policy.limits
                 b) ->
    (* Constraint pre-filter: the lower bound already exceeds the limits,
       and it never exceeds the true post-optimization estimate, so the
       full trial (combine, install, liveness, optimize, rollback) could
       only have ended in the same [Size_rejected].  Skip it without
       touching the CFG.  The trace event is byte-identical to a trial
       size reject — reject events always carry zero estimates — so the
       fast path cannot be distinguished from the outside. *)
    st.stats.size_rejections <- st.stats.size_rejections + 1;
    st.perf.prefilter_hits <- st.perf.prefilter_hits + 1;
    emit ~outcome:"size" ~est:zero_estimate ~msg:"";
    Size_rejected b
  | _ ->
  (* Snapshot everything a failed attempt must not leak: the saved unroll
     body (body_for_unroll may re-save it below), the fresh-id counters
     (the trial allocates instruction/register/block ids that die with
     the rollback; restoring the counters keeps a failed attempt
     bit-for-bit invisible to later merges), and the edge version (a
     rolled-back trial restores the exact pre-trial graph, so edge-keyed
     caches stay valid across it). *)
  let saved_body_before =
    if kind = Unroll then Hashtbl.find_opt st.saved_bodies hb_id else None
  in
  let next_block0 = cfg.Cfg.next_block
  and next_instr0 = cfg.Cfg.next_instr
  and next_reg0 = cfg.Cfg.next_reg in
  let edge_version0 = st.edge_version in
  let live_cache0 = st.live_cache and live_dirty0 = st.live_dirty in
  let rollback_hidden_state () =
    if kind = Unroll then
      (match saved_body_before with
      | Some b -> Hashtbl.replace st.saved_bodies hb_id b
      | None -> Hashtbl.remove st.saved_bodies hb_id);
    cfg.Cfg.next_block <- next_block0;
    cfg.Cfg.next_instr <- next_instr0;
    cfg.Cfg.next_reg <- next_reg0
  in
  let restore_edge_version () =
    st.edge_version <- edge_version0;
    (* a forest or map computed *during* the trial must not be
       revalidated at a reused version number *)
    (match st.loops_cache with
    | Some (k, _, _) when k > st.edge_version -> st.loops_cache <- None
    | _ -> ());
    match st.preds_cache with
    | Some (k, _) when k > st.edge_version -> st.preds_cache <- None
    | _ -> ()
  in
  let s_for_merge, s_label =
    match kind with
    | Simple -> (Cfg.block cfg s_id, s_id)
    | Tail_dup | Peel ->
      (Cfg.refresh_instr_ids cfg (Cfg.block cfg s_id), s_id)
    | Unroll -> (Cfg.refresh_instr_ids cfg (body_for_unroll st hb_id), hb_id)
  in
  (* Provenance: the copy (or moved block) about to enter the hyperblock
     is re-placed by this merge; origins are preserved, the latest
     placing transform wins.  The retagged copy dies with the rollback,
     so lineage never leaks from a failed trial. *)
  let lineage_step = List.length (Cfg.decisions cfg hb_id) + 1 in
  let s_for_merge =
    if not (Lineage.enabled ()) then s_for_merge
    else begin
      let placed =
        match kind with
        | Simple -> Lineage.If_conv lineage_step
        | Tail_dup -> Lineage.Tail_dup lineage_step
        | Unroll ->
          Lineage.Unroll (lineage_step, counter st.unrolls_done hb_id + 1)
        | Peel -> Lineage.Peel (lineage_step, counter st.peels_done s_id + 1)
      in
      let instrs =
        List.map
          (fun (i : Instr.t) ->
            Instr.with_lineage { i.Instr.lineage with Lineage.placed } i)
          s_for_merge.Block.instrs
      in
      { s_for_merge with Block.instrs }
    end
  in
  let combined_result =
    let injected =
      match !chaos_combine_failure with
      | Some f -> f ~hb_id ~s_id ~kind
      | None -> false
    in
    if injected then Error "chaos-injected Cannot_combine"
    else
      match Combine.combine cfg ~hb ~s:s_for_merge ~s_label with
      | combined, _ -> Ok combined
      | exception Combine.Cannot_combine msg -> Error msg
  in
  match combined_result with
  | Error msg ->
    (* structural failure: nothing was installed, but the id counters
       (and possibly the saved body) already moved — restore them *)
    st.stats.combine_failures <- st.stats.combine_failures + 1;
    rollback_hidden_state ();
    emit ~outcome:"structural" ~est:zero_estimate ~msg;
    Structural_failure msg
  | Ok combined ->
    (* install tentatively; saved state allows rollback.  The merge
       rewires the hyperblock's exits, and a Simple merge removes [s]. *)
    let old_s = if kind = Simple then Cfg.block_opt cfg s_id else None in
    Cfg.set_block cfg combined;
    if kind = Simple then begin
      Cfg.remove_block cfg s_id;
      touch_edges st [ hb_id; s_id ]
    end
    else touch_edges st [ hb_id ];
    let trial_live_out () =
      match live_out_local st hb_id with
      | Some lo -> lo
      | None -> Liveness.live_out (liveness st) hb_id
    in
    let live_out = trial_live_out () in
    let final =
      if config.Policy.iterate_opt then begin
        let b = Trips_opt.Optimizer.optimize_block cfg combined ~live_out in
        if b != combined then begin
          Cfg.set_block cfg b;
          (* the exit simplifier may have pruned exits *)
          if
            Block.distinct_successors b
            = Block.distinct_successors combined
          then touch_body st [ hb_id ]
          else touch_edges st [ hb_id ]
        end;
        b
      end
      else combined
    in
    let live_out = trial_live_out () in
    let est = Constraints.estimate final ~live_out in
    (match (!prefilter_audit, bound) with
    | Some f, Some b -> f ~bound:b ~est
    | _ -> ());
    if Constraints.legal ~slack:config.Policy.slack config.Policy.limits est
    then begin
      st.stats.merges <- st.stats.merges + 1;
      (match kind with
      | Simple -> ()
      | Tail_dup -> st.stats.tail_dups <- st.stats.tail_dups + 1
      | Unroll ->
        st.stats.unrolls <- st.stats.unrolls + 1;
        bump_counter st.unrolls_done hb_id
      | Peel ->
        st.stats.peels <- st.stats.peels + 1;
        bump_counter st.peels_done s_id);
      if Lineage.enabled () then
        Cfg.record_decision cfg hb_id
          (Lineage.decision ~step:lineage_step ~kind:(kind_name kind)
             ~src:s_id);
      (* commit point: stamp every block this merge wrote.  Bumping here
         — and only here — keeps failed trials version-invisible, which
         is what lets speculative verdicts computed against the
         pre-trial graph survive a failed head attempt. *)
      Cfg.bump_version cfg hb_id;
      if kind = Simple then Cfg.bump_version cfg s_id;
      st.commit_epoch <- st.commit_epoch + 1;
      emit ~outcome:"success" ~est ~msg:"";
      Success est
    end
    else begin
      (* rollback: restore the exact pre-trial graph *)
      st.stats.size_rejections <- st.stats.size_rejections + 1;
      Cfg.set_block cfg hb;
      (match old_s with Some b -> Cfg.set_block cfg b | None -> ());
      rollback_hidden_state ();
      (if st.fast.incr_liveness then begin
         (* the rolled-back graph is bit-identical to the pre-trial one,
            so the pre-trial liveness solution and dirty set are exact
            again; re-key them at a fresh version (a solution computed
            against the trial graph must never be served) instead of
            dirtying, so a failed trial costs no liveness work later *)
         st.version <- st.version + 1;
         st.live_cache <-
           Option.map (fun (_, l) -> (st.version, l)) live_cache0;
         st.live_dirty <- live_dirty0
       end
       else if kind = Simple then touch_body st [ hb_id; s_id ]
       else touch_body st [ hb_id ]);
      restore_edge_version ();
      emit ~outcome:"size" ~est:zero_estimate ~msg:"";
      Size_rejected est
    end

(* ---- speculative trial verdicts ---------------------------------------- *)

(* Everything a *failed* trial does to the world, captured on whichever
   domain ran it so the main loop can replay it at the exact point the
   sequential trial would have run: the outcome, the trace events (raw,
   re-stamped with the serving domain's stream coordinates on replay),
   the metric deltas, and the stats/perf counter bumps.  Successful
   merges are never served from a verdict — they mutate far more than
   this record captures — so a [Success] verdict only tells the main
   loop to run the merge live.

   The read-set versions pin everything the trial consulted: the two
   block versions, the liveness and loop-forest instance stamps, and the
   commit epoch (within one epoch the CFG bits, fresh-id counters and
   bookkeeping tables are all constant — rollback restores them — so a
   trial is a deterministic function of this key). *)
type verdict = {
  v_kind : merge_kind;
  v_depth : int;
  v_prob : float;
  v_epoch : int;
  v_hb_version : int;
  v_s_version : int;
  v_live_version : int;
  v_loops_version : int;
  v_outcome : merge_outcome;
  v_trace : Trips_obs.Trace.captured;
  v_deltas : Trips_obs.Metrics.deltas;
  v_stats : stats;  (* the spec trial's own counters, applied as deltas *)
  v_prefilter_hits : int;
  v_live_incremental : int;
  v_loops_reuse : int;
}

type pending = { p_task : spec_task; p_result : verdict option ref }

(* Trial copy for one speculative merge: shares every immutable input
   with [st] (block records, analysis instances, profile, config) and
   owns a private copy of every mutable structure a trial writes, so a
   worker-side trial can install/optimize/rollback freely without
   touching the real state.  [live_gk] is dropped — the shared memo
   hashtable is not domain-safe — which only costs recomputed gen/kill
   sets (identical values). *)
let spec_state st =
  {
    st with
    cfg = Cfg.copy st.cfg;
    stats = empty_stats ();
    saved_bodies = Hashtbl.copy st.saved_bodies;
    peels_done = Hashtbl.copy st.peels_done;
    unrolls_done = Hashtbl.copy st.unrolls_done;
    live_gk = None;
    floors = Hashtbl.copy st.floors;
    body_floors = Hashtbl.copy st.body_floors;
    perf =
      {
        prefilter_hits = 0;
        live_incremental = 0;
        loops_reuse = 0;
        trials_spec = 0;
        trials_cached = 0;
        trials_wasted = 0;
      };
  }

(* ---- ExpandBlock ------------------------------------------------------- *)

(* Candidates reached through block [src] (whose successors are
   [targets]), with path probabilities extended using the original edge
   profile. *)
let make_candidates st ~src ~targets ~depth ~prob =
  List.map
    (fun t ->
      {
        Policy.block_id = t;
        depth;
        prob = prob *. Profile.edge_prob st.profile ~src ~dst:t;
      })
    targets

(** Grow the hyperblock seeded at [seed] until no candidate fits. *)
let expand_block st seed =
  if Cfg.mem st.cfg seed then begin
    let selector =
      Policy.make_selector ~preds:(preds st) st.config st.cfg st.profile ~seed
    in
    let pool = Policy.Pool.create ~indexed:st.fast.cand_pool in
    let merge_budget = ref (4 * Cfg.num_blocks st.cfg + 64) in
    (* candidates rejected *only on size*, retried after later shrinks;
       structural (Cannot_combine) failures never enter this pool — a
       merge the combiner cannot express will not become expressible
       because the block shrank, and retrying it would melt the budget *)
    let retry = ref [] in
    (* the seed's current block record, held across attempts: a failed
       merge rolls the block back bit-for-bit, so only a success or a
       split forces a refetch *)
    let hb_cache = ref None in
    let current_hb () =
      match !hb_cache with
      | Some b -> b
      | None ->
        let b = Cfg.block st.cfg seed in
        hb_cache := Some b;
        b
    in
    let emit_reject (c : Policy.candidate) ~classify ~outcome =
      emit_attempt st ~hb_id:seed ~s_id:c.Policy.block_id
        ~depth:c.Policy.depth ~prob:c.Policy.prob ~classify ~outcome
        ~est:zero_estimate ~msg:""
    in
    (* ---- trial-verdict cache + speculative trials ---- *)
    let cache_on = st.fast.trial_cache in
    let sched =
      (* the chaos / audit hooks reach into a trial from the outside;
         a speculated trial would observe them at the wrong time, so
         their presence forces every trial to run live *)
      if
        cache_on && st.fast.spec_trials
        && !chaos_combine_failure = None
        && !prefilter_audit = None
      then !scheduler_ref
      else None
    in
    let spec_k = !spec_trials_ref in
    let verdicts : (int, verdict) Hashtbl.t = Hashtbl.create 16 in
    let inflight : (int, pending) Hashtbl.t = Hashtbl.create 16 in
    let waste n = st.perf.trials_wasted <- st.perf.trials_wasted + n in
    (* Instance stamps of the *currently valid* analyses, [None] when the
       cached instance is stale (then nothing can be served — a spec
       computed against it is conservatively wasted). *)
    let live_version () =
      match st.live_cache with
      | Some (v, l) when v = st.version -> Some (Liveness.version l)
      | _ -> None
    in
    let loops_version () =
      let key = if st.fast.loop_reuse then st.edge_version else st.version in
      match st.loops_cache with
      | Some (k, _, l) when k = key -> Some (Loops.version l)
      | _ -> None
    in
    let spawn_spec (c : Policy.candidate) kind =
      let s_id = c.Policy.block_id in
      (* force the analyses clean *before* snapshotting, so the spec
         state, the recorded read-set and the serve-time check all see
         the same instances (computing them now rather than inside the
         next trial is output-invariant: same least fixpoint) *)
      ignore (liveness st);
      ignore (loops st);
      match (live_version (), loops_version ()) with
      | Some live_v, Some loops_v ->
        let sst = spec_state st in
        let v_epoch = st.commit_epoch in
        let v_hb_version = Cfg.block_version st.cfg seed in
        let v_s_version = Cfg.block_version st.cfg s_id in
        let cell = ref None in
        let thunk () =
          let (outcome, v_trace), v_deltas =
            Trips_obs.Metrics.capture (fun () ->
                Trips_obs.Trace.capture (fun () ->
                    merge_blocks ~depth:c.Policy.depth ~prob:c.Policy.prob
                      sst ~hb_id:seed ~s_id ~kind))
          in
          cell :=
            Some
              {
                v_kind = kind;
                v_depth = c.Policy.depth;
                v_prob = c.Policy.prob;
                v_epoch;
                v_hb_version;
                v_s_version;
                v_live_version = live_v;
                v_loops_version = loops_v;
                v_outcome = outcome;
                v_trace;
                v_deltas;
                v_stats = sst.stats;
                v_prefilter_hits = sst.perf.prefilter_hits;
                v_live_incremental = sst.perf.live_incremental;
                v_loops_reuse = sst.perf.loops_reuse;
              }
        in
        (match sched with
        | Some s ->
          st.perf.trials_spec <- st.perf.trials_spec + 1;
          Hashtbl.replace inflight s_id
            { p_task = s.spawn thunk; p_result = cell }
        | None -> ())
      | _ -> ()
    in
    (* While the main loop evaluates the head candidate, the next [K]
       pool candidates (in exact selection order — peek re-adds them)
       are trial-merged speculatively on worker domains. *)
    let speculate () =
      if sched <> None && spec_k > 0 then
        List.iter
          (fun (c : Policy.candidate) ->
            let s_id = c.Policy.block_id in
            if
              (not (Hashtbl.mem verdicts s_id))
              && not (Hashtbl.mem inflight s_id)
            then
              match classify ~hb:(current_hb ()) st ~hb_id:seed ~s_id with
              | Some kind -> spawn_spec c kind
              | None -> ())
          (Policy.peek selector pool spec_k)
    in
    let harvest s_id =
      match Hashtbl.find_opt inflight s_id with
      | None -> ()
      | Some p ->
        p.p_task.join ();
        Hashtbl.remove inflight s_id;
        (match !(p.p_result) with
        | Some v -> Hashtbl.replace verdicts s_id v
        | None -> waste 1 (* cancelled, or the trial raised *))
    in
    (* Serve the head candidate's verdict when one exists and nothing in
       its read-set moved.  Replaying the captured trace here puts the
       events at exactly the stream position the sequential trial would
       have written them, so served and live runs are byte-identical. *)
    let lookup (c : Policy.candidate) kind =
      if not cache_on then None
      else begin
        let s_id = c.Policy.block_id in
        harvest s_id;
        match Hashtbl.find_opt verdicts s_id with
        | None -> None
        | Some v ->
          Hashtbl.remove verdicts s_id;
          let fresh =
            v.v_epoch = st.commit_epoch
            && v.v_hb_version = Cfg.block_version st.cfg seed
            && v.v_s_version = Cfg.block_version st.cfg s_id
            && live_version () = Some v.v_live_version
            && loops_version () = Some v.v_loops_version
            && v.v_kind = kind
            && v.v_depth = c.Policy.depth
            && v.v_prob = c.Policy.prob
          in
          (match v.v_outcome with
          | _ when not fresh ->
            waste 1;
            None
          | Success _ ->
            (* a successful merge mutates the real CFG, provenance and
               bookkeeping; the verdict only proves it will succeed, so
               run it live *)
            waste 1;
            None
          | Structural_failure _ | Size_rejected _ ->
            Trips_obs.Trace.replay v.v_trace;
            Trips_obs.Metrics.apply v.v_deltas;
            st.stats.attempts <- st.stats.attempts + v.v_stats.attempts;
            st.stats.size_rejections <-
              st.stats.size_rejections + v.v_stats.size_rejections;
            st.stats.combine_failures <-
              st.stats.combine_failures + v.v_stats.combine_failures;
            st.perf.prefilter_hits <-
              st.perf.prefilter_hits + v.v_prefilter_hits;
            st.perf.live_incremental <-
              st.perf.live_incremental + v.v_live_incremental;
            st.perf.loops_reuse <- st.perf.loops_reuse + v.v_loops_reuse;
            st.perf.trials_cached <- st.perf.trials_cached + 1;
            Some v.v_outcome)
      end
    in
    (* Every commit moves the seed's version, so no pending verdict can
       ever serve again: cancel what has not started, join the rest, and
       account every unserved speculation as wasted. *)
    let invalidate () =
      Hashtbl.iter (fun _ p -> p.p_task.cancel ()) inflight;
      Hashtbl.iter
        (fun _ p ->
          p.p_task.join ();
          waste 1)
        inflight;
      Hashtbl.reset inflight;
      waste (Hashtbl.length verdicts);
      Hashtbl.reset verdicts
    in
    (* Budget exhaustion: every candidate still waiting — the one just
       selected, the remaining pool (canonical block-id order) and the
       size-retry list (chronological) — gets its own [budget] event, so
       the trace stays a complete account of every candidacy and the
       trace==stats identity holds when the budget trips. *)
    let drain_budget c =
      emit_reject c ~classify:"none" ~outcome:"budget";
      List.iter
        (fun c -> emit_reject c ~classify:"none" ~outcome:"budget")
        (Policy.Pool.to_sorted_list pool);
      List.iter
        (fun c -> emit_reject c ~classify:"none" ~outcome:"budget")
        (List.rev !retry);
      retry := []
    in
    let rec drain ~progress =
      match selector.Policy.select pool with
      | None ->
        (* convergence retry: size-failed candidates get another chance
           once something else was merged (the block may have shrunk) *)
        if progress && !retry <> [] then begin
          Policy.Pool.add_list pool !retry;
          retry := [];
          drain ~progress:false
        end
      | Some c ->
        (* watchdog: one poll per drained candidate — the convergent
           loop's unit of work.  A pathological input that makes the
           retry pool churn for seconds trips the stage deadline (or
           fuel budget) here and surfaces as a structured [Timed_out]
           cell failure instead of a hung sweep. *)
        Trips_obs.Watchdog.check ();
        if !merge_budget <= 0 then drain_budget c
        else begin
          decr merge_budget;
          let s_id = c.Policy.block_id in
          match classify ~hb:(current_hb ()) st ~hb_id:seed ~s_id with
          | None ->
            emit_reject c ~classify:"none" ~outcome:"policy";
            drain ~progress
          | Some kind -> (
            (* kick off speculation on the next pool candidates before
               settling the head one *)
            speculate ();
            (* snapshot the merged-in block's own successors before the
               merge folds them into the seed's exit list *)
            let merged_succs =
              Block.distinct_successors (Cfg.block st.cfg s_id)
            in
            match
              match lookup c kind with
              | Some outcome -> outcome
              | None ->
                merge_blocks ~depth:c.Policy.depth ~prob:c.Policy.prob
                  ~hb:(current_hb ()) st ~hb_id:seed ~s_id ~kind
            with
            | Success _ ->
              invalidate ();
              hb_cache := None;
              make_candidates st ~src:s_id ~targets:merged_succs
                ~depth:(c.Policy.depth + 1) ~prob:c.Policy.prob
              |> Policy.Pool.add_list pool;
              drain ~progress:true
            | Structural_failure _ ->
              (* dropped: not retried, not split *)
              drain ~progress
            | Size_rejected _ ->
              (* Section 9 extension: a unique-predecessor candidate that
                 only failed on size can be split so its first half still
                 merges; the second half becomes a later candidate *)
              if
                st.config.Policy.enable_block_splitting
                && kind = Simple
                && Block.size (Cfg.block st.cfg s_id) >= 8
              then begin
                match Trips_transform.Split.split_block st.cfg s_id with
                | Some new_id ->
                  st.stats.block_splits <- st.stats.block_splits + 1;
                  touch_edges st [ s_id; new_id ];
                  (* commit point: the split rewrote [s_id] in place *)
                  Cfg.bump_version st.cfg s_id;
                  Cfg.bump_version st.cfg new_id;
                  st.commit_epoch <- st.commit_epoch + 1;
                  invalidate ();
                  Policy.Pool.add pool c;
                  drain ~progress:true
                | None ->
                  retry := c :: !retry;
                  drain ~progress
              end
              else begin
                retry := c :: !retry;
                drain ~progress
              end)
        end
    in
    make_candidates st ~src:seed
      ~targets:(Block.distinct_successors (Cfg.block st.cfg seed))
      ~depth:1 ~prob:1.0
    |> Policy.Pool.add_list pool;
    (* the finally clause settles (and accounts for) any speculation
       still in flight, including on the watchdog-timeout unwind *)
    Fun.protect ~finally:invalidate (fun () -> drain ~progress:false)
  end

(** Run hyperblock formation over the whole function: expand every block,
    hottest seed first (profiled execution count, reverse postorder as
    tie-break), treating newly formed hyperblocks as final.  Seeding by
    frequency lets the hot loop header absorb its body while the body
    blocks still have unique predecessors; seeding in plain textual order
    would let a cold predecessor (e.g. the function entry) peel and
    tail-duplicate the loop first and fragment it.  Returns merge
    statistics (the paper's m/t/u/p). *)
let run config cfg profile : stats =
  let st = make config cfg profile in
  let rec loop () =
    (* seed boundary: pruning can delete arbitrarily many blocks.  The
       incremental paths carry their caches across seeds by touching
       exactly the pruned blocks — in the common case nothing is pruned
       and every cache stays valid — while the hatched paths restart
       from scratch the way the historical code did. *)
    let before = Cfg.block_ids cfg in
    Order.prune_unreachable cfg;
    (match List.filter (fun id -> not (Cfg.mem cfg id)) before with
    | [] -> ()
    | removed ->
      (* commit point: pruning deletes blocks for good *)
      List.iter (Cfg.bump_version cfg) removed;
      st.commit_epoch <- st.commit_epoch + 1;
      touch_edges st removed);
    if not st.fast.incr_liveness then begin
      st.live_cache <- None;
      st.live_dirty <- IntSet.empty
    end;
    if not st.fast.loop_reuse then begin
      st.version <- st.version + 1;
      st.edge_version <- st.edge_version + 1
    end;
    let rpo = Order.reverse_postorder cfg in
    let order =
      List.mapi (fun idx id -> (id, idx)) rpo
      |> List.sort (fun (a, ia) (b, ib) ->
             match
               compare (Profile.block_count profile b)
                 (Profile.block_count profile a)
             with
             | 0 -> compare ia ib
             | c -> c)
      |> List.map fst
    in
    match List.find_opt (fun id -> not (Hashtbl.mem st.finalized id)) order with
    | Some seed ->
      Trips_obs.Watchdog.check ();
      expand_block st seed;
      Hashtbl.replace st.finalized seed ();
      loop ()
    | None -> ()
  in
  loop ();
  Order.prune_unreachable cfg;
  Cfg.validate cfg;
  publish_metrics st.stats;
  let open Trips_obs in
  Metrics.incr ~by:st.perf.prefilter_hits "formation.prefilter.hits";
  Metrics.incr ~by:st.perf.live_incremental "formation.liveness.incremental";
  Metrics.incr ~by:st.perf.loops_reuse "formation.loops.reuse";
  (* published even at zero so [chfc --metrics] always shows the
     speculation cost/benefit split in its stable sorted order *)
  Metrics.incr ~by:st.perf.trials_spec "formation.trials.speculative";
  Metrics.incr ~by:st.perf.trials_cached "formation.trials.cached";
  Metrics.incr ~by:st.perf.trials_wasted "formation.trials.wasted";
  st.stats
