(* Convergent hyperblock formation (Figure 5 of the paper).

   [expand_block] grows a seed block by repeatedly selecting a candidate
   successor (policy-driven), trial-merging it, optimizing the merged
   block when the configuration says to, and committing only when the
   TRIPS structural constraints still hold.  [MergeBlocks]'s case split is
   implemented in [classify]:

   - unique predecessor: plain merge, the successor block disappears;
   - [HB -> S] is a self back edge ([HB = S]): unrolling by head
     duplication — a copy of the *saved one-iteration body* is merged, so
     each unroll appends one iteration rather than doubling (Section 4.1);
   - S is a loop header reached over a non-back edge: peeling by head
     duplication;
   - otherwise: classical tail duplication.

   All three duplication flavors go through the single [Combine] merge
   primitive applied to a fresh copy of S whose exits still name the
   original targets; the copy never exists as a separate CFG block, so
   the CFG never grows and termination is easy to see.

   Instead of the paper's scratch-space trial, we install the merged
   block, recompute liveness, optimize and constraint-check, and roll the
   installation back on failure — observably identical, but it gives the
   optimizer and the size estimator exact liveness information.

   Convergence: candidates that failed only because the block was too
   full are retried after further merges and optimizations shrink the
   block ("repeatedly applies scalar optimizations until it cannot add
   any block"). *)

open Trips_ir
open Trips_analysis
open Trips_profile
open Trips_transform

type stats = {
  mutable merges : int;  (* m: successful merges of any kind *)
  mutable tail_dups : int;  (* t *)
  mutable unrolls : int;  (* u *)
  mutable peels : int;  (* p *)
  mutable attempts : int;
  mutable size_rejections : int;
  mutable combine_failures : int;  (* structural Cannot_combine rejections *)
  mutable block_splits : int;  (* Section 9 extension, when enabled *)
}

let empty_stats () =
  {
    merges = 0;
    tail_dups = 0;
    unrolls = 0;
    peels = 0;
    attempts = 0;
    size_rejections = 0;
    combine_failures = 0;
    block_splits = 0;
  }

let pp_stats fmt s =
  Fmt.pf fmt "%d/%d/%d/%d" s.merges s.tail_dups s.unrolls s.peels

let publish_metrics (s : stats) =
  let open Trips_obs in
  Metrics.incr ~by:s.merges "formation.merges";
  Metrics.incr ~by:s.tail_dups "formation.tail_dups";
  Metrics.incr ~by:s.unrolls "formation.unrolls";
  Metrics.incr ~by:s.peels "formation.peels";
  Metrics.incr ~by:s.attempts "formation.attempts";
  Metrics.incr ~by:s.size_rejections "formation.reject.size";
  Metrics.incr ~by:s.combine_failures "formation.reject.structural";
  Metrics.incr ~by:s.block_splits "formation.block_splits"

type merge_kind = Simple | Unroll | Peel | Tail_dup

let kind_name = function
  | Simple -> "simple"
  | Unroll -> "unroll"
  | Peel -> "peel"
  | Tail_dup -> "tail_dup"

type state = {
  cfg : Cfg.t;
  profile : Profile.t;
  config : Policy.config;
  stats : stats;
  finalized : (int, unit) Hashtbl.t;
  saved_bodies : (int, Block.t) Hashtbl.t;  (* loop block -> 1-iteration body *)
  peels_done : (int, int) Hashtbl.t;  (* header -> peeled iterations *)
  unrolls_done : (int, int) Hashtbl.t;  (* loop block -> appended iterations *)
  mutable version : int;  (* bumped on every CFG change *)
  mutable loops_cache : (int * Loops.t) option;
  mutable live_cache : (int * Liveness.t) option;
  live_gk : Liveness.gk_cache option;  (* gen/kill memo across recomputations *)
}

let make config cfg profile =
  {
    cfg;
    profile;
    config;
    stats = empty_stats ();
    finalized = Hashtbl.create 64;
    saved_bodies = Hashtbl.create 8;
    peels_done = Hashtbl.create 8;
    unrolls_done = Hashtbl.create 8;
    version = 0;
    loops_cache = None;
    live_cache = None;
    (* escape hatch for bisecting memo-related issues, and for benchmarks
       that want to price the memo itself (see bench sweep) *)
    live_gk =
      (match Sys.getenv_opt "TRIPS_NO_LIVENESS_MEMO" with
      | Some s when s <> "" -> None
      | Some _ | None -> Some (Liveness.gk_cache ()));
  }

let touch st =
  st.version <- st.version + 1

let loops st =
  match st.loops_cache with
  | Some (v, l) when v = st.version -> l
  | _ ->
    let l = Loops.compute st.cfg in
    st.loops_cache <- Some (st.version, l);
    l

let liveness st =
  match st.live_cache with
  | Some (v, l) when v = st.version -> l
  | _ ->
    let l = Liveness.compute ?cache:st.live_gk st.cfg in
    st.live_cache <- Some (st.version, l);
    l

let counter tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)
let bump_counter tbl key = Hashtbl.replace tbl key (counter tbl key + 1)

(* ---- LegalMerge -------------------------------------------------------- *)

(* Classify the merge of successor [s_id] into [hb_id], or reject it.
   Mirrors lines 7-15 of MergeBlocks plus the policy's legality gates. *)
let classify st ~hb_id ~s_id : merge_kind option =
  let cfg = st.cfg in
  let config = st.config in
  if not (Cfg.mem cfg s_id) then None
  else if Hashtbl.mem st.finalized s_id && s_id <> hb_id then None
  else begin
    let hb = Cfg.block cfg hb_id in
    if not (List.mem s_id (Block.distinct_successors hb)) then None
    else if s_id = hb_id then
      (* self back edge: unrolling *)
      if
        config.Policy.enable_head_dup
        && counter st.unrolls_done hb_id < config.Policy.max_unroll
      then Some Unroll
      else None
    else begin
      let preds = Cfg.predecessors cfg s_id in
      let lp = loops st in
      let is_header = Loops.is_loop_header lp s_id in
      let back_edge = Loops.is_back_edge lp ~src:hb_id ~dst:s_id in
      if preds = [ hb_id ] && s_id <> cfg.Cfg.entry then Some Simple
      else if is_header && not back_edge then
        if
          config.Policy.enable_head_dup
          && counter st.peels_done s_id < config.Policy.max_peel
          &&
          (* trip-count-histogram gate: peel iteration k only when enough
             entries run at least k iterations *)
          (match Profile.trip_histogram st.profile s_id with
          | [] -> true
          | _ ->
            Profile.trip_count_at_least st.profile s_id
              (counter st.peels_done s_id + 1)
            >= config.Policy.peel_coverage)
        then Some Peel
        else None
      else if
        config.Policy.enable_tail_dup
        && Block.size (Cfg.block cfg s_id) <= config.Policy.max_tail_dup_instrs
      then Some Tail_dup
      else None
    end
  end

(* ---- MergeBlocks ------------------------------------------------------- *)

(* The saved one-iteration body for unrolling [hb_id]; re-saved if stale
   (a target of the saved body has since been merged away). *)
let body_for_unroll st hb_id =
  let cfg = st.cfg in
  let current = Cfg.block cfg hb_id in
  let valid (b : Block.t) =
    List.for_all
      (fun t -> t = hb_id || Cfg.mem cfg t)
      (Block.successors b)
  in
  match Hashtbl.find_opt st.saved_bodies hb_id with
  | Some b when valid b -> b
  | Some _ | None ->
    Hashtbl.replace st.saved_bodies hb_id current;
    current

type merge_outcome =
  | Success of Constraints.estimate
  | Structural_failure of string
  | Size_rejected of Constraints.estimate

(* Test-only fault injection: when set, a combine for which the function
   returns [true] fails as if [Combine.Cannot_combine] had been raised.
   Lets the chaos/property tests exercise the structural-failure paths
   (rollback, retry-pool exclusion) on demand. *)
let chaos_combine_failure :
    (hb_id:int -> s_id:int -> kind:merge_kind -> bool) option ref =
  ref None

let zero_estimate =
  { Constraints.instrs = 0; loads_stores = 0; reads = 0; writes = 0 }

(* One trace event per merge attempt — the replayable decision log the
   convergence argument needs.  [outcome] is "success" or the reject
   reason ("structural" | "size" | "policy" | "budget"). *)
let emit_attempt st ~hb_id ~s_id ~depth ~prob ~classify ~outcome ~est ~msg =
  if Trips_obs.Trace.is_enabled () then begin
    let open Trips_obs.Trace in
    let l = st.config.Policy.limits in
    record "merge-attempt"
      [
        ("seed", Int hb_id);
        ("cand", Int s_id);
        ("depth", Int depth);
        ("prob", Float prob);
        ("classify", Str classify);
        ("outcome", Str outcome);
        ("est_instrs", Int est.Constraints.instrs);
        ("est_loads_stores", Int est.Constraints.loads_stores);
        ("est_reads", Int est.Constraints.reads);
        ("est_writes", Int est.Constraints.writes);
        ("max_instrs", Int l.Constraints.max_instrs);
        ("max_loads_stores", Int l.Constraints.max_load_store);
        ("max_reads", Int l.Constraints.max_reads);
        ("max_writes", Int l.Constraints.max_writes);
        ("slack", Int st.config.Policy.slack);
        ("msg", Str msg);
      ]
  end

let merge_blocks ?(depth = 0) ?(prob = 1.0) st ~hb_id ~s_id ~kind :
    merge_outcome =
  let cfg = st.cfg in
  let config = st.config in
  st.stats.attempts <- st.stats.attempts + 1;
  let hb = Cfg.block cfg hb_id in
  (* Snapshot everything a failed attempt must not leak: the saved unroll
     body (body_for_unroll may re-save it below) and the fresh-id
     counters (the trial allocates instruction/register/block ids that
     die with the rollback; restoring the counters keeps a failed
     attempt bit-for-bit invisible to later merges). *)
  let saved_body_before =
    if kind = Unroll then Hashtbl.find_opt st.saved_bodies hb_id else None
  in
  let next_block0 = cfg.Cfg.next_block
  and next_instr0 = cfg.Cfg.next_instr
  and next_reg0 = cfg.Cfg.next_reg in
  let rollback_hidden_state () =
    if kind = Unroll then
      (match saved_body_before with
      | Some b -> Hashtbl.replace st.saved_bodies hb_id b
      | None -> Hashtbl.remove st.saved_bodies hb_id);
    cfg.Cfg.next_block <- next_block0;
    cfg.Cfg.next_instr <- next_instr0;
    cfg.Cfg.next_reg <- next_reg0
  in
  let emit = emit_attempt st ~hb_id ~s_id ~depth ~prob ~classify:(kind_name kind) in
  let s_for_merge, s_label =
    match kind with
    | Simple -> (Cfg.block cfg s_id, s_id)
    | Tail_dup | Peel ->
      (Cfg.refresh_instr_ids cfg (Cfg.block cfg s_id), s_id)
    | Unroll -> (Cfg.refresh_instr_ids cfg (body_for_unroll st hb_id), hb_id)
  in
  let combined_result =
    let injected =
      match !chaos_combine_failure with
      | Some f -> f ~hb_id ~s_id ~kind
      | None -> false
    in
    if injected then Error "chaos-injected Cannot_combine"
    else
      match Combine.combine cfg ~hb ~s:s_for_merge ~s_label with
      | combined, _ -> Ok combined
      | exception Combine.Cannot_combine msg -> Error msg
  in
  match combined_result with
  | Error msg ->
    (* structural failure: nothing was installed, but the id counters
       (and possibly the saved body) already moved — restore them *)
    st.stats.combine_failures <- st.stats.combine_failures + 1;
    rollback_hidden_state ();
    emit ~outcome:"structural" ~est:zero_estimate ~msg;
    Structural_failure msg
  | Ok combined ->
    (* install tentatively; saved state allows rollback *)
    let old_s = if kind = Simple then Cfg.block_opt cfg s_id else None in
    Cfg.set_block cfg combined;
    if kind = Simple then Cfg.remove_block cfg s_id;
    touch st;
    let live_out = Liveness.live_out (liveness st) hb_id in
    let final =
      if config.Policy.iterate_opt then begin
        let b = Trips_opt.Optimizer.optimize_block cfg combined ~live_out in
        if b != combined then begin
          Cfg.set_block cfg b;
          touch st
        end;
        b
      end
      else combined
    in
    let live_out = Liveness.live_out (liveness st) hb_id in
    let est = Constraints.estimate final ~live_out in
    if Constraints.legal ~slack:config.Policy.slack config.Policy.limits est
    then begin
      st.stats.merges <- st.stats.merges + 1;
      (match kind with
      | Simple -> ()
      | Tail_dup -> st.stats.tail_dups <- st.stats.tail_dups + 1
      | Unroll ->
        st.stats.unrolls <- st.stats.unrolls + 1;
        bump_counter st.unrolls_done hb_id
      | Peel ->
        st.stats.peels <- st.stats.peels + 1;
        bump_counter st.peels_done s_id);
      emit ~outcome:"success" ~est ~msg:"";
      Success est
    end
    else begin
      (* rollback *)
      st.stats.size_rejections <- st.stats.size_rejections + 1;
      Cfg.set_block cfg hb;
      (match old_s with Some b -> Cfg.set_block cfg b | None -> ());
      rollback_hidden_state ();
      touch st;
      emit ~outcome:"size" ~est ~msg:"";
      Size_rejected est
    end

(* ---- ExpandBlock ------------------------------------------------------- *)

(* Candidates reached through block [src] (whose successors are
   [targets]), with path probabilities extended using the original edge
   profile. *)
let make_candidates st ~src ~targets ~depth ~prob =
  List.map
    (fun t ->
      {
        Policy.block_id = t;
        depth;
        prob = prob *. Profile.edge_prob st.profile ~src ~dst:t;
      })
    targets

(* Keep the most promising entry per block id. *)
let add_candidates pool cands =
  List.fold_left
    (fun pool (c : Policy.candidate) ->
      match List.find_opt (fun x -> x.Policy.block_id = c.Policy.block_id) pool with
      | None -> c :: pool
      | Some existing ->
        if c.Policy.depth < existing.Policy.depth
           || (c.Policy.depth = existing.Policy.depth
              && c.Policy.prob > existing.Policy.prob)
        then c :: List.filter (fun x -> x.Policy.block_id <> c.Policy.block_id) pool
        else pool)
    pool cands

(** Grow the hyperblock seeded at [seed] until no candidate fits. *)
let expand_block st seed =
  if Cfg.mem st.cfg seed then begin
    let selector = Policy.make_selector st.config st.cfg st.profile ~seed in
    let merge_budget = ref (4 * Cfg.num_blocks st.cfg + 64) in
    (* candidates rejected *only on size*, retried after later shrinks;
       structural (Cannot_combine) failures never enter this pool — a
       merge the combiner cannot express will not become expressible
       because the block shrank, and retrying it would melt the budget *)
    let retry = ref [] in
    let emit_reject c ~classify ~outcome =
      emit_attempt st ~hb_id:seed ~s_id:c.Policy.block_id
        ~depth:c.Policy.depth ~prob:c.Policy.prob ~classify ~outcome
        ~est:zero_estimate ~msg:""
    in
    let rec drain pool ~progress =
      let choice, pool = selector.Policy.select pool in
      match choice with
      | None ->
        (* convergence retry: size-failed candidates get another chance
           once something else was merged (the block may have shrunk) *)
        if progress && !retry <> [] then begin
          let pool = add_candidates pool !retry in
          retry := [];
          drain pool ~progress:false
        end
      | Some c ->
        if !merge_budget <= 0 then
          emit_reject c ~classify:"none" ~outcome:"budget"
        else begin
          decr merge_budget;
          let s_id = c.Policy.block_id in
          match classify st ~hb_id:seed ~s_id with
          | None ->
            emit_reject c ~classify:"none" ~outcome:"policy";
            drain pool ~progress
          | Some kind -> (
            (* snapshot the merged-in block's own successors before the
               merge folds them into the seed's exit list *)
            let merged_succs =
              Block.distinct_successors (Cfg.block st.cfg s_id)
            in
            match
              merge_blocks ~depth:c.Policy.depth ~prob:c.Policy.prob st
                ~hb_id:seed ~s_id ~kind
            with
            | Success _ ->
              let new_cands =
                make_candidates st ~src:s_id ~targets:merged_succs
                  ~depth:(c.Policy.depth + 1) ~prob:c.Policy.prob
              in
              drain (add_candidates pool new_cands) ~progress:true
            | Structural_failure _ ->
              (* dropped: not retried, not split *)
              drain pool ~progress
            | Size_rejected _ ->
              (* Section 9 extension: a unique-predecessor candidate that
                 only failed on size can be split so its first half still
                 merges; the second half becomes a later candidate *)
              if
                st.config.Policy.enable_block_splitting
                && kind = Simple
                && Block.size (Cfg.block st.cfg s_id) >= 8
              then begin
                match Trips_transform.Split.split_block st.cfg s_id with
                | Some _ ->
                  st.stats.block_splits <- st.stats.block_splits + 1;
                  touch st;
                  drain (add_candidates pool [ c ]) ~progress:true
                | None ->
                  retry := c :: !retry;
                  drain pool ~progress
              end
              else begin
                retry := c :: !retry;
                drain pool ~progress
              end)
        end
    in
    let initial =
      make_candidates st ~src:seed
        ~targets:(Block.distinct_successors (Cfg.block st.cfg seed))
        ~depth:1 ~prob:1.0
    in
    drain (add_candidates [] initial) ~progress:false
  end

(** Run hyperblock formation over the whole function: expand every block,
    hottest seed first (profiled execution count, reverse postorder as
    tie-break), treating newly formed hyperblocks as final.  Seeding by
    frequency lets the hot loop header absorb its body while the body
    blocks still have unique predecessors; seeding in plain textual order
    would let a cold predecessor (e.g. the function entry) peel and
    tail-duplicate the loop first and fragment it.  Returns merge
    statistics (the paper's m/t/u/p). *)
let run config cfg profile : stats =
  let st = make config cfg profile in
  let rec loop () =
    Order.prune_unreachable cfg;
    st.version <- st.version + 1;
    let rpo = Order.reverse_postorder cfg in
    let order =
      List.mapi (fun idx id -> (id, idx)) rpo
      |> List.sort (fun (a, ia) (b, ib) ->
             match
               compare (Profile.block_count profile b)
                 (Profile.block_count profile a)
             with
             | 0 -> compare ia ib
             | c -> c)
      |> List.map fst
    in
    match List.find_opt (fun id -> not (Hashtbl.mem st.finalized id)) order with
    | Some seed ->
      expand_block st seed;
      Hashtbl.replace st.finalized seed ();
      loop ()
    | None -> ()
  in
  loop ();
  Order.prune_unreachable cfg;
  Cfg.validate cfg;
  publish_metrics st.stats;
  st.stats
