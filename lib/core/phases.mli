(** The phase orderings compared in Table 1.

    Parenthesized phases are merged into convergent formation's iterative
    loop; the others run as discrete passes:

    - BB: basic blocks as TRIPS blocks (baseline);
    - UPIO: CFG-level Unroll+Peel, then incremental If-conversion with
      tail duplication, then scalar Optimization;
    - IUPO: If-conversion first, then Unroll+Peel with accurate
      post-if-conversion sizes, then Optimization;
    - (IUP)O: convergent formation with head duplication but optimization
      only at the end;
    - (IUPO): full convergent formation — optimization after every merge,
      so size estimates are tight and more blocks fit. *)

open Trips_profile

type ordering =
  | Basic_blocks
  | Upio
  | Iupo
  | Iup_o  (** (IUP)O *)
  | Iupo_merged  (** (IUPO) *)

val all : ordering list

val table_orderings : ordering list
(** The four formed configurations the experiments sweep against the
    basic-block baseline (Tables 1 and 3, Figure 7) — the single source
    of truth for every table's column set. *)

val name : ordering -> string

type step = {
  step_name : string;  (** "optimize", "unroll+peel", "formation", ... *)
  step_run : unit -> unit;  (** mutates the CFG and the plan's stats *)
}

val plan :
  ?config:Policy.config -> ordering -> Trips_ir.Cfg.t -> Profile.t ->
  Formation.stats * step list
(** Decompose the ordering into named steps over the CFG; running every
    step in order is exactly {!apply}.  The per-phase verifier
    ([Trips_verify.Diff_check]) interleaves structural and differential
    checks between steps, so the first transform that breaks an invariant
    or changes observable behavior is named.  The returned stats record
    is accumulated into as steps run. *)

val apply :
  ?config:Policy.config -> ordering -> Trips_ir.Cfg.t -> Profile.t ->
  Formation.stats
(** Apply the ordering in place.  Classical scalar optimization runs
    first in every configuration, mirroring the Scale front end.  Table 1
    uses the default breadth-first EDGE policy throughout. *)
