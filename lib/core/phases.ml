(* The phase orderings compared in Table 1.

   Parenthesized phases are merged into convergent formation's iterative
   loop; unparenthesized ones run as discrete passes:

   - BB      : basic blocks as TRIPS blocks (baseline);
   - UPIO    : CFG-level Unroll+Peel, then incremental If-conversion with
               tail duplication, then scalar Optimization;
   - IUPO    : If-conversion first, then Unroll+Peel with accurate
               post-if-conversion sizes, then Optimization;
   - (IUP)O  : convergent formation with head duplication (I, U and P
               interleaved) but optimization only at the end;
   - (IUPO)  : full convergent formation — optimization runs after every
               merge, so size estimates are tight and more blocks fit. *)

open Trips_profile

type ordering =
  | Basic_blocks
  | Upio
  | Iupo
  | Iup_o  (* (IUP)O *)
  | Iupo_merged  (* (IUPO) *)

let all = [ Basic_blocks; Upio; Iupo; Iup_o; Iupo_merged ]

(* The four formed configurations every experiment sweeps against the
   basic-block baseline (Tables 1 and 3, Figure 7): adding an ordering
   here updates every table. *)
let table_orderings = [ Upio; Iupo; Iup_o; Iupo_merged ]

let name = function
  | Basic_blocks -> "BB"
  | Upio -> "UPIO"
  | Iupo -> "IUPO"
  | Iup_o -> "(IUP)O"
  | Iupo_merged -> "(IUPO)"

type step = { step_name : string; step_run : unit -> unit }

(* Fold the m/t/u/p statistics of one formation run into the plan's
   accumulator (Upio/Iupo add discrete unroll/peel counts around it). *)
let accum ~(into : Formation.stats) (s : Formation.stats) =
  into.Formation.merges <- into.Formation.merges + s.Formation.merges;
  into.Formation.tail_dups <- into.Formation.tail_dups + s.Formation.tail_dups;
  into.Formation.unrolls <- into.Formation.unrolls + s.Formation.unrolls;
  into.Formation.peels <- into.Formation.peels + s.Formation.peels;
  into.Formation.attempts <- into.Formation.attempts + s.Formation.attempts;
  into.Formation.size_rejections <-
    into.Formation.size_rejections + s.Formation.size_rejections;
  into.Formation.combine_failures <-
    into.Formation.combine_failures + s.Formation.combine_failures;
  into.Formation.block_splits <-
    into.Formation.block_splits + s.Formation.block_splits

(** Decompose ordering [o] over [cfg] into named steps.  Running every
    step in order is exactly {!apply}; the per-phase verifier interleaves
    structural and differential checks between steps.  The returned stats
    record is accumulated into as steps run. *)
let plan ?(config = Policy.edge_default) o cfg (profile : Profile.t) :
    Formation.stats * step list =
  let stats = Formation.empty_stats () in
  let optimize name =
    { step_name = name;
      step_run = (fun () -> Trips_opt.Optimizer.optimize_cfg cfg) }
  in
  let formation config' =
    { step_name = "formation";
      step_run = (fun () -> accum ~into:stats (Formation.run config' cfg profile)) }
  in
  let steps =
    match o with
    | Basic_blocks -> [ optimize "optimize" ]
    | Upio ->
      [
        optimize "optimize";
        {
          step_name = "unroll+peel";
          step_run =
            (fun () ->
              let u, p = Discrete_up.run_before_formation config cfg profile in
              stats.Formation.unrolls <- stats.Formation.unrolls + u;
              stats.Formation.peels <- stats.Formation.peels + p);
        };
        formation
          { config with Policy.enable_head_dup = false; iterate_opt = false };
        optimize "final-optimize";
      ]
    | Iupo ->
      [
        optimize "optimize";
        formation
          { config with Policy.enable_head_dup = false; iterate_opt = false };
        {
          step_name = "unroll+peel";
          step_run =
            (fun () -> Discrete_up.run_after_formation config cfg profile stats);
        };
        optimize "final-optimize";
      ]
    | Iup_o ->
      [
        optimize "optimize";
        formation
          { config with Policy.enable_head_dup = true; iterate_opt = false };
        optimize "final-optimize";
      ]
    | Iupo_merged ->
      [
        optimize "optimize";
        formation
          { config with Policy.enable_head_dup = true; iterate_opt = true };
        optimize "final-optimize";
      ]
  in
  (stats, steps)

(** Apply phase ordering [o] to [cfg] in place.  [config] supplies the
    block-selection policy and structural limits (Table 1 uses the greedy
    breadth-first EDGE policy throughout).  Classical scalar optimization
    runs first in every configuration, mirroring the Scale front end.
    Returns m/t/u/p statistics. *)
let apply ?config o cfg (profile : Profile.t) : Formation.stats =
  let stats, steps = plan ?config o cfg profile in
  List.iter (fun s -> s.step_run ()) steps;
  stats
