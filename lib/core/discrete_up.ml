(* Discrete unroll/peel phases for the classical orderings of Table 1.

   UPIO runs loop unrolling and peeling *before* if-conversion: the loop
   body is replicated at the CFG level (tests retained, no predication)
   and the unroll factor must be chosen from a pessimistic pre-predication
   size estimate — the phase-ordering handicap the paper describes.

   IUPO runs them *after* if-conversion: loops are single self-looping
   hyperblocks by then, so the unroller sees exact block sizes and picks
   an accurate factor, but applies it in one shot with no interleaved
   optimization (that last step is what distinguishes it from convergent
   formation). *)

open Trips_ir
open Trips_analysis
open Trips_profile

(* Largest peel count k <= max_peel such that at least [coverage] of the
   loop's entries run >= k iterations. *)
let peel_count profile ~header ~max_peel ~coverage =
  match Profile.trip_histogram profile header with
  | [] -> 0
  | _ ->
    let rec grow k =
      if k >= max_peel then k
      else if Profile.trip_count_at_least profile header (k + 1) >= coverage
      then grow (k + 1)
      else k
    in
    grow 0

(* ---- pre-formation (UPIO) --------------------------------------------- *)

(* Pessimistic whole-loop size estimate before if-conversion: body
   instruction counts inflated by a predication-overhead guess, plus one
   branch per block. *)
let pre_formation_loop_estimate cfg (l : Loops.loop) =
  let raw =
    IntSet.fold
      (fun id acc ->
        let b = Cfg.block cfg id in
        acc + Block.size b + List.length b.Block.exits)
      l.Loops.body 0
  in
  int_of_float (float_of_int raw *. 1.4)

(** UPIO's U and P: CFG-level replication of loop bodies, innermost loops
    first, before any if-conversion.  Returns (unrolled, peeled) iteration
    counts for the statistics columns. *)
let run_before_formation (config : Policy.config) cfg profile =
  let loops = Loops.compute cfg in
  (* Only innermost loops are unrolled/peeled, and the unroll factor is
     capped low: before if-conversion the unroller cannot predict how the
     body will pack into hyperblocks, so a fixed conservative bound is
     the realistic discrete-phase policy (it is also why UPIO trails the
     orderings that see post-if-conversion sizes). *)
  let innermost (l : Loops.loop) =
    List.for_all
      (fun (o : Loops.loop) ->
        o.Loops.header = l.Loops.header
        || not (IntSet.subset o.Loops.body l.Loops.body))
      (Loops.all_loops loops)
  in
  let by_depth =
    List.sort
      (fun a b -> compare b.Loops.depth a.Loops.depth)
      (List.filter innermost (Loops.all_loops loops))
  in
  let unrolled = ref 0 and peeled = ref 0 in
  List.iter
    (fun (l : Loops.loop) ->
      (* loop structure may have changed as inner loops were processed *)
      let current = Loops.compute cfg in
      match Loops.loop_headed_by current l.Loops.header with
      | None -> ()
      | Some l ->
        let p =
          peel_count profile ~header:l.Loops.header
            ~max_peel:config.Policy.max_peel
            ~coverage:config.Policy.peel_coverage
        in
        if p > 0 then begin
          ignore (Trips_transform.Cfg_loop.peel cfg l ~count:p);
          peeled := !peeled + p
        end;
        (* re-read the loop after peeling rewired its entries *)
        let current = Loops.compute cfg in
        (match Loops.loop_headed_by current l.Loops.header with
        | None -> ()
        | Some l ->
          let est = max 1 (pre_formation_loop_estimate cfg l) in
          let budget = config.Policy.limits.Constraints.max_instrs - config.Policy.slack in
          let factor = min 4 (max 1 (budget / est)) in
          if factor > 1 then begin
            ignore (Trips_transform.Cfg_loop.unroll cfg l ~factor);
            unrolled := !unrolled + (factor - 1)
          end))
    by_depth;
  Cfg.validate cfg;
  (!unrolled, !peeled)

(* ---- post-formation (IUPO) -------------------------------------------- *)

let self_loop_blocks cfg =
  List.filter
    (fun id -> List.mem id (Cfg.successors cfg id))
    (Cfg.block_ids cfg)

(** IUPO's U and P: peel and unroll single-block loops after
    if-conversion, with exact sizes, by driving the head-duplication merge
    primitive a fixed number of times (no optimization in the loop).
    Accumulates into [stats]. *)
let run_after_formation (config : Policy.config) cfg profile
    (stats : Formation.stats) =
  let config = { config with Policy.enable_head_dup = true; iterate_opt = false } in
  let st = Formation.make config cfg profile in
  List.iter
    (fun loop_id ->
      if Cfg.mem cfg loop_id then begin
        (* peeling: merge copies of the loop into each outside
           predecessor, as many iterations as the trip histogram covers *)
        let p =
          peel_count profile ~header:loop_id ~max_peel:config.Policy.max_peel
            ~coverage:config.Policy.peel_coverage
        in
        let preds = Cfg.predecessors cfg loop_id in
        let outside = List.filter (fun q -> q <> loop_id) preds in
        List.iter
          (fun pred ->
            let rec peel_iter k =
              if k < p then
                match
                  Formation.merge_blocks st ~hb_id:pred ~s_id:loop_id
                    ~kind:Formation.Peel
                with
                | Formation.Success _ -> peel_iter (k + 1)
                | Formation.Structural_failure _ | Formation.Size_rejected _ ->
                  ()
            in
            peel_iter 0)
          outside;
        (* unrolling: exact factor from the actual hyperblock size *)
        if Cfg.mem cfg loop_id then begin
          let live = Liveness.compute cfg in
          let b = Cfg.block cfg loop_id in
          let est =
            Constraints.estimate b ~live_out:(Liveness.live_out live loop_id)
          in
          let budget =
            config.Policy.limits.Constraints.max_instrs - config.Policy.slack
          in
          let extra =
            min config.Policy.max_unroll
              (max 0 ((budget / max 1 est.Constraints.instrs) - 1))
          in
          let rec unroll_iter k =
            if k < extra then
              match
                Formation.merge_blocks st ~hb_id:loop_id ~s_id:loop_id
                  ~kind:Formation.Unroll
              with
              | Formation.Success _ -> unroll_iter (k + 1)
              | Formation.Structural_failure _ | Formation.Size_rejected _ ->
                ()
          in
          unroll_iter 0
        end
      end)
    (self_loop_blocks cfg);
  Order.prune_unreachable cfg;
  Cfg.validate cfg;
  let s = st.Formation.stats in
  stats.Formation.merges <- stats.Formation.merges + s.Formation.merges;
  stats.Formation.tail_dups <- stats.Formation.tail_dups + s.Formation.tail_dups;
  stats.Formation.unrolls <- stats.Formation.unrolls + s.Formation.unrolls;
  stats.Formation.peels <- stats.Formation.peels + s.Formation.peels;
  Formation.publish_metrics s
