(** Differential per-phase checking of a phase ordering.

    [Pipeline.verify_against] compares functional checksums only once,
    end-to-end, so a miscompiling transform surfaces as an opaque
    mismatch with no locus.  This module runs the same
    {!Chf.Phases.plan}, but after {e each} step re-checks the structural
    invariants ({!Cfg_verify}) and re-runs the functional simulator
    against the pre-formation behavior — the first step that breaks an
    invariant or changes observable behavior is named. *)

open Trips_ir

type fail_kind =
  | Structural of Cfg_verify.violation list
  | Diverged of { got : int; expected : int }  (** functional checksums *)
  | Crashed of string  (** the step, or the simulator on its output, raised *)

type failure = {
  phase : string;  (** the {!Chf.Phases.step} that broke *)
  phase_index : int;  (** 0-based position in the plan *)
  kind : fail_kind;
}

val pp_failure : Format.formatter -> failure -> unit

val run :
  ?config:Chf.Policy.config ->
  ?limits:Chf.Constraints.limits ->
  ?fuel:int ->
  registers:(int * int) list ->
  fresh_memory:(unit -> int array) ->
  Chf.Phases.ordering ->
  Cfg.t ->
  Trips_profile.Profile.t ->
  (Chf.Formation.stats, failure) result
(** Apply [ordering] to the CFG in place, checking after every step.
    [registers] preloads workload parameters and [fresh_memory] must
    build an identical, freshly-initialized memory image per call (the
    simulator mutates it).  The expected checksum is taken from the
    input CFG before any step runs; undefined-use violations already
    present in the input are tolerated throughout, so only regressions
    are reported.  On [Error], the CFG is left as the failing step
    produced it, for dumping. *)
