(* Seeded fault injection.  Each injector perturbs a deep copy of the
   victim CFG the way a buggy transform would; the suite then asserts
   that Cfg_verify or the differential functional check notices. *)

open Trips_ir
open Trips_sim

type fault =
  | Drop_entry
  | Dangle_edge
  | Strip_exits
  | Double_unguarded
  | Clone_instr_id
  | Undefined_use
  | Corrupt_predicate
  | Oversubscribe_loads
  | Orphan_block
  | Corrupt_arithmetic
  | Stall_spin
  | Alloc_spike

let all_faults =
  [
    Drop_entry; Dangle_edge; Strip_exits; Double_unguarded; Clone_instr_id;
    Undefined_use; Corrupt_predicate; Oversubscribe_loads; Orphan_block;
    Corrupt_arithmetic; Stall_spin; Alloc_spike;
  ]

let fault_name = function
  | Drop_entry -> "drop-entry"
  | Dangle_edge -> "dangle-edge"
  | Strip_exits -> "strip-exits"
  | Double_unguarded -> "double-unguarded"
  | Clone_instr_id -> "clone-instr-id"
  | Undefined_use -> "undefined-use"
  | Corrupt_predicate -> "corrupt-predicate"
  | Oversubscribe_loads -> "oversubscribe-loads"
  | Orphan_block -> "orphan-block"
  | Corrupt_arithmetic -> "corrupt-arithmetic"
  | Stall_spin -> "stall-spin"
  | Alloc_spike -> "alloc-spike"

type injection = { fault : fault; cfg : Cfg.t; note : string }

let pick rng = function
  | [] -> None
  | xs -> Some (List.nth xs (Random.State.int rng (List.length xs)))

(* Bump the first immediate operand of an op, if it has one. *)
let bump_imm op =
  let open Instr in
  let bumped = ref false in
  let f = function
    | Imm k when not !bumped ->
      bumped := true;
      Imm (k + 1)
    | o -> o
  in
  let op' =
    match op with
    | Binop (b, d, x, y) -> Binop (b, d, f x, f y)
    | Cmp (c, d, x, y) -> Cmp (c, d, f x, f y)
    | Mov (d, x) -> Mov (d, f x)
    | Load (d, a, o) -> Load (d, f a, o)
    | Store (v, a, o) -> Store (f v, f a, o)
    | Nullw _ as o -> o
  in
  if !bumped then Some op' else None

let inject rng fault victim =
  let cfg = Cfg.copy victim in
  let blocks = Cfg.blocks cfg in
  let install note = Some { fault; cfg; note } in
  match fault with
  | Drop_entry ->
    cfg.Cfg.entry <- Cfg.fresh_block_id cfg;
    Some { fault; cfg; note = Fmt.str "entry set to missing b%d" cfg.Cfg.entry }
  | Dangle_edge -> (
    let gotos =
      List.concat_map
        (fun (b : Block.t) ->
          List.filter_map
            (function { Block.target = Block.Goto d; _ } -> Some (b, d) | _ -> None)
            b.Block.exits)
        blocks
    in
    match pick rng gotos with
    | None -> None
    | Some (b, d) ->
      let ghost = Cfg.fresh_block_id cfg in
      let exits =
        List.map
          (fun (e : Block.exit_) ->
            match e.Block.target with
            | Block.Goto d' when d' = d -> { e with Block.target = Block.Goto ghost }
            | _ -> e)
          b.Block.exits
      in
      Cfg.set_block cfg { b with Block.exits };
      install (Fmt.str "b%d exit retargeted b%d -> missing b%d" b.Block.id d ghost))
  | Strip_exits -> (
    match pick rng blocks with
    | None -> None
    | Some b ->
      Cfg.set_block cfg { b with Block.exits = [] };
      install (Fmt.str "b%d exits deleted" b.Block.id))
  | Double_unguarded -> (
    let candidates =
      List.filter
        (fun (b : Block.t) ->
          List.exists (fun e -> e.Block.eguard = None) b.Block.exits)
        blocks
    in
    match pick rng candidates with
    | None -> None
    | Some b ->
      let extra = { Block.eguard = None; target = Block.Goto cfg.Cfg.entry } in
      Cfg.set_block cfg { b with Block.exits = b.Block.exits @ [ extra ] };
      install (Fmt.str "b%d given a second unguarded exit" b.Block.id))
  | Clone_instr_id -> (
    let candidates = List.filter (fun b -> b.Block.instrs <> []) blocks in
    match pick rng candidates with
    | None -> None
    | Some b -> (
      match pick rng b.Block.instrs with
      | None -> None
      | Some i ->
        Cfg.set_block cfg { b with Block.instrs = b.Block.instrs @ [ i ] };
        install (Fmt.str "i%d cloned into b%d with its id" i.Instr.id b.Block.id)))
  | Undefined_use -> (
    match pick rng blocks with
    | None -> None
    | Some b ->
      let ghost = Cfg.fresh_reg cfg in
      let dst = Cfg.fresh_reg cfg in
      let i = Cfg.instr cfg (Instr.Binop (Opcode.Add, dst, Instr.Reg ghost, Instr.Imm 1)) in
      Cfg.set_block cfg { b with Block.instrs = b.Block.instrs @ [ i ] };
      install (Fmt.str "b%d reads never-defined r%d" b.Block.id ghost))
  | Corrupt_predicate -> (
    let candidates =
      List.concat_map
        (fun (b : Block.t) ->
          List.filter_map
            (fun (e : Block.exit_) ->
              match e.Block.eguard with Some g -> Some (b, e, g) | None -> None)
            b.Block.exits)
        blocks
    in
    match pick rng candidates with
    | None -> None
    | Some (b, e, g) ->
      let flipped = { g with Instr.sense = not g.Instr.sense } in
      let exits =
        List.map
          (fun (e' : Block.exit_) ->
            if e' == e then { e' with Block.eguard = Some flipped } else e')
          b.Block.exits
      in
      Cfg.set_block cfg { b with Block.exits };
      install
        (Fmt.str "b%d exit guard r%d sense flipped to %b" b.Block.id
           g.Instr.greg flipped.Instr.sense))
  | Oversubscribe_loads -> (
    match pick rng blocks with
    | None -> None
    | Some b ->
      let n = Machine.max_load_store + 1 in
      let loads =
        List.init n (fun k ->
            Cfg.instr cfg (Instr.Load (Cfg.fresh_reg cfg, Instr.Imm k, 0)))
      in
      Cfg.set_block cfg { b with Block.instrs = b.Block.instrs @ loads };
      install (Fmt.str "b%d given %d extra loads (LSID budget %d)" b.Block.id n
                   Machine.max_load_store))
  | Orphan_block ->
    let id = Cfg.fresh_block_id cfg in
    let i = Cfg.instr cfg (Instr.Mov (Cfg.fresh_reg cfg, Instr.Imm 0)) in
    Cfg.set_block cfg
      (Block.make id [ i ] [ { Block.eguard = None; target = Block.Ret None } ]);
    Some { fault; cfg; note = Fmt.str "orphan b%d added" id }
  | Corrupt_arithmetic -> (
    let sites =
      List.concat_map
        (fun (b : Block.t) ->
          List.filter_map
            (fun (i : Instr.t) ->
              Option.map (fun op' -> (b, i, op')) (bump_imm i.Instr.op))
            b.Block.instrs)
        blocks
    in
    (* prefer stores: their values feed the memory checksum directly *)
    let stores = List.filter (fun (_, i, _) -> Instr.is_store i) sites in
    match pick rng (if stores <> [] then stores else sites) with
    | None -> None
    | Some (b, i, op') ->
      let instrs =
        List.map
          (fun (j : Instr.t) -> if j.Instr.id = i.Instr.id then { j with Instr.op = op' } else j)
          b.Block.instrs
      in
      Cfg.set_block cfg { b with Block.instrs };
      install (Fmt.str "i%d in b%d immediate bumped" i.Instr.id b.Block.id))
  | Stall_spin ->
    (* A fresh empty block that jumps to itself, with every return exit
       retargeted into it: structurally legal, and with zero instructions
       per iteration the simulator's instruction-count fuel never ticks —
       only the block-level watchdog poll can catch it. *)
    let spin = Cfg.fresh_block_id cfg in
    Cfg.set_block cfg
      (Block.make spin [] [ { Block.eguard = None; target = Block.Goto spin } ]);
    let retargeted = ref 0 in
    List.iter
      (fun (b : Block.t) ->
        let exits =
          List.map
            (fun (e : Block.exit_) ->
              match e.Block.target with
              | Block.Ret _ ->
                incr retargeted;
                { e with Block.target = Block.Goto spin }
              | Block.Goto _ -> e)
            b.Block.exits
        in
        Cfg.set_block cfg { b with Block.exits })
      blocks;
    if !retargeted = 0 then None
    else install (Fmt.str "%d returns retargeted to empty spin b%d" !retargeted spin)
  | Alloc_spike -> (
    (* An allocation spike: one block inflated far past the 128-instr
       budget, the way a runaway duplication pass would. *)
    match pick rng blocks with
    | None -> None
    | Some b ->
      let n = 40 * Machine.max_instrs in
      let movs =
        List.init n (fun k -> Cfg.instr cfg (Instr.Mov (Cfg.fresh_reg cfg, Instr.Imm k)))
      in
      Cfg.set_block cfg { b with Block.instrs = b.Block.instrs @ movs };
      install
        (Fmt.str "b%d inflated with %d movs (instr budget %d)" b.Block.id n
           Machine.max_instrs))

type detection =
  | Structural of Cfg_verify.violation
  | Behavioral of { got : int; expected : int }
  | Crashed of string
  | Hung of { reason : Trips_obs.Watchdog.reason; spent_s : float }

type outcome = { o_fault : fault; o_note : string; o_detection : detection option }

let pp_outcome fmt o =
  match o.o_detection with
  | Some (Structural v) ->
    Fmt.pf fmt "%-20s DETECTED structurally: %a  [%s]" (fault_name o.o_fault)
      Cfg_verify.pp_violation v o.o_note
  | Some (Behavioral { got; expected }) ->
    Fmt.pf fmt "%-20s DETECTED behaviorally: checksum %d != %d  [%s]"
      (fault_name o.o_fault) got expected o.o_note
  | Some (Crashed msg) ->
    Fmt.pf fmt "%-20s DETECTED by simulator: %s  [%s]" (fault_name o.o_fault)
      msg o.o_note
  | Some (Hung { reason; spent_s }) ->
    Fmt.pf fmt "%-20s DETECTED by watchdog: %a after %.3fs  [%s]"
      (fault_name o.o_fault) Trips_obs.Watchdog.pp_reason reason spent_s o.o_note
  | None ->
    Fmt.pf fmt "%-20s UNDETECTED  [%s]" (fault_name o.o_fault) o.o_note

let detect ~limits ~fuel ~wd_fuel ~registers ~params ~fresh_memory ~expected
    (inj : injection) =
  match Cfg_verify.check ~allow_unreachable:false ~params ~limits inj.cfg with
  | v :: _ -> Some (Structural v)
  | [] -> (
    match
      Trips_obs.Watchdog.run ~fuel:wd_fuel ~stage:"chaos-sim" (fun () ->
          Func_sim.run ~fuel ~registers ~memory:(fresh_memory ()) inj.cfg)
    with
    | exception Trips_obs.Watchdog.Timed_out { wd_reason; wd_spent_s; _ } ->
      Some (Hung { reason = wd_reason; spent_s = wd_spent_s })
    | exception e -> Some (Crashed (Printexc.to_string e))
    | r ->
      if r.Func_sim.checksum <> expected then
        Some (Behavioral { got = r.Func_sim.checksum; expected })
      else None)

let run_suite ?(faults = all_faults) ?(limits = Chf.Constraints.trips_limits)
    ?(attempts = 8) ?(fuel = 10_000_000) ~seed ~registers ~fresh_memory victim =
  let rng = Random.State.make [| seed |] in
  let baseline = Func_sim.run ~fuel ~registers ~memory:(fresh_memory ()) victim in
  let expected = baseline.Func_sim.checksum in
  (* Block-count watchdog budget: the victim's own dynamic block count
     with a wide margin, so a mutant that loops through zero-instruction
     blocks (invisible to instruction fuel) still trips deterministically. *)
  let wd_fuel = (4 * baseline.Func_sim.blocks_executed) + 4096 in
  let params =
    IntSet.union
      (IntSet.of_list (List.map fst registers))
      (Cfg_verify.undefined_regs victim)
  in
  List.filter_map
    (fun fault ->
      let rec try_inject k last =
        if k = 0 then last
        else
          match inject rng fault victim with
          | None -> last  (* no applicable site in this CFG *)
          | Some inj -> (
            match
              detect ~limits ~fuel ~wd_fuel ~registers ~params ~fresh_memory
                ~expected inj
            with
            | Some d ->
              Some { o_fault = fault; o_note = inj.note; o_detection = Some d }
            | None ->
              try_inject (k - 1)
                (Some { o_fault = fault; o_note = inj.note; o_detection = None }))
      in
      try_inject attempts None)
    faults

let undetected outcomes = List.filter (fun o -> o.o_detection = None) outcomes
