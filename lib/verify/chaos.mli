(** Seeded fault injection: prove the verifier catches what it claims to.

    Each fault class perturbs a (copy of a) compiled CFG the way a buggy
    transform would — dropping an edge, stripping exits, duplicating an
    instruction id, reading an undefined register, flipping a predicate
    sense, oversubscribing the load/store budget, orphaning a block,
    corrupting arithmetic — and the suite asserts that {!Cfg_verify}
    or the differential functional check detects it.  Injection is
    deterministic per seed, so failures replay. *)

open Trips_ir

type fault =
  | Drop_entry  (** point the CFG entry at a nonexistent block *)
  | Dangle_edge  (** retarget one exit at a nonexistent block *)
  | Strip_exits  (** delete every exit of one block *)
  | Double_unguarded  (** add a second unguarded exit to a block *)
  | Clone_instr_id  (** duplicate an instruction, keeping its id *)
  | Undefined_use  (** insert a read of a never-defined register *)
  | Corrupt_predicate  (** flip the sense of an exit guard *)
  | Oversubscribe_loads  (** blow the 32-LSID budget of one block *)
  | Orphan_block  (** add a block unreachable from the entry *)
  | Corrupt_arithmetic  (** perturb an immediate operand *)
  | Stall_spin
      (** retarget every return into an empty self-looping block: a hang
          invisible to instruction-count fuel, catchable only by the
          block-level watchdog *)
  | Alloc_spike  (** inflate one block far past the 128-instr budget *)

val all_faults : fault list
val fault_name : fault -> string

type injection = { fault : fault; cfg : Cfg.t; note : string }
(** A perturbed deep copy; the victim CFG is never mutated. *)

val inject : Random.State.t -> fault -> Cfg.t -> injection option
(** [None] when the CFG offers no site for this fault class (e.g. no
    guarded exits to corrupt). *)

type detection =
  | Structural of Cfg_verify.violation  (** caught by {!Cfg_verify} *)
  | Behavioral of { got : int; expected : int }  (** functional divergence *)
  | Crashed of string  (** the simulator rejected it (e.g. exit invariant) *)
  | Hung of { reason : Trips_obs.Watchdog.reason; spent_s : float }
      (** the per-run watchdog tripped: the mutant spins without
          retiring instructions (e.g. {!Stall_spin}) *)

type outcome = { o_fault : fault; o_note : string; o_detection : detection option }

val pp_outcome : Format.formatter -> outcome -> unit

val run_suite :
  ?faults:fault list ->
  ?limits:Chf.Constraints.limits ->
  ?attempts:int ->
  ?fuel:int ->
  seed:int ->
  registers:(int * int) list ->
  fresh_memory:(unit -> int array) ->
  Cfg.t ->
  outcome list
(** For each fault class: inject at up to [attempts] (default 8)
    randomly-drawn sites and report the first detected injection — or,
    if every site escapes both the structural checker and the
    differential functional check, an outcome with [o_detection = None]
    (a verifier gap).  [limits] defaults to {!Chf.Constraints.trips_limits};
    [fuel] (default 10M) bounds each simulation's instruction count, and
    a block-count watchdog (4x the victim's dynamic block count) bounds
    its block count, so a fault that turns the CFG into an infinite loop
    — even through zero-instruction blocks — is detected as a crash or a
    hang rather than wedging the suite. *)

val undetected : outcome list -> outcome list
