(* Structural invariant checker: graph shape, exit discipline, unique
   instruction ids, definition-before-use, and (optionally) the TRIPS
   resource budgets.  Each violation carries a block/instruction locus so
   the offending phase and block can be named directly. *)

open Trips_ir
open Trips_analysis

type violation =
  | Missing_entry of { entry : int }
  | No_exit of { block : int }
  | Multiple_unguarded_exits of { block : int; count : int }
  | Dangling_edge of { block : int; target : int }
  | Unreachable_block of { block : int }
  | Duplicate_instr_id of { block : int; instr : int }
  | Undefined_use of { block : int; instr : int option; reg : int; in_guard : bool }
  | Over_budget of {
      block : int;
      estimate : Chf.Constraints.estimate;
      limits : Chf.Constraints.limits;
    }

type locus = { at_block : int option; at_instr : int option; at_reg : int option }

let locus = function
  | Missing_entry _ -> { at_block = None; at_instr = None; at_reg = None }
  | No_exit { block }
  | Multiple_unguarded_exits { block; _ }
  | Dangling_edge { block; _ }
  | Unreachable_block { block }
  | Over_budget { block; _ } ->
    { at_block = Some block; at_instr = None; at_reg = None }
  | Duplicate_instr_id { block; instr } ->
    { at_block = Some block; at_instr = Some instr; at_reg = None }
  | Undefined_use { block; instr; reg; _ } ->
    { at_block = Some block; at_instr = instr; at_reg = Some reg }

let pp_violation fmt = function
  | Missing_entry { entry } -> Fmt.pf fmt "entry b%d does not exist" entry
  | No_exit { block } -> Fmt.pf fmt "b%d has no exits" block
  | Multiple_unguarded_exits { block; count } ->
    Fmt.pf fmt "b%d has %d unguarded exits" block count
  | Dangling_edge { block; target } ->
    Fmt.pf fmt "b%d targets missing b%d" block target
  | Unreachable_block { block } ->
    Fmt.pf fmt "b%d is unreachable from the entry" block
  | Duplicate_instr_id { block; instr } ->
    Fmt.pf fmt "duplicate instruction id i%d (in b%d)" instr block
  | Undefined_use { block; instr; reg; in_guard } ->
    Fmt.pf fmt "b%d%a reads %sr%d with no reaching definition" block
      Fmt.(option (fmt "/i%d"))
      instr
      (if in_guard then "guard " else "")
      reg
  | Over_budget { block; estimate; limits } ->
    Fmt.pf fmt
      "b%d exceeds TRIPS budgets: %a (limits %d/%d/%d/%d)" block
      Chf.Constraints.pp_estimate estimate limits.Chf.Constraints.max_instrs
      limits.Chf.Constraints.max_load_store limits.Chf.Constraints.max_reads
      limits.Chf.Constraints.max_writes

(* ---- graph-shape checks (safe on arbitrary tables) -------------------- *)

let shape_violations cfg =
  let viols = ref [] in
  let add v = viols := v :: !viols in
  if not (Cfg.mem cfg cfg.Cfg.entry) then
    add (Missing_entry { entry = cfg.Cfg.entry });
  let seen_ids = Hashtbl.create 256 in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if b.Block.exits = [] then add (No_exit { block = id });
      let unguarded =
        List.length (List.filter (fun e -> e.Block.eguard = None) b.Block.exits)
      in
      if unguarded > 1 then
        add (Multiple_unguarded_exits { block = id; count = unguarded });
      List.iter
        (fun s -> if not (Cfg.mem cfg s) then add (Dangling_edge { block = id; target = s }))
        (Block.distinct_successors b);
      List.iter
        (fun (i : Instr.t) ->
          match Hashtbl.find_opt seen_ids i.Instr.id with
          | Some () -> add (Duplicate_instr_id { block = id; instr = i.Instr.id })
          | None -> Hashtbl.add seen_ids i.Instr.id ())
        b.Block.instrs)
    cfg;
  List.rev !viols

(* The dataflow checks walk successors and run liveness; a missing entry,
   dangling edge or exitless block would crash them, so they are gated on
   these specific shape violations being absent. *)
let shape_blocks_dataflow = function
  | Missing_entry _ | Dangling_edge _ | No_exit _ -> true
  | _ -> false

(* ---- definition-before-use -------------------------------------------- *)

(* Forward must-be-defined analysis.  A register is "defined" once any
   definition — predicated or not — has executed on every path from the
   entry: flow-through on a false guard is legal if-conversion structure,
   so guarded definitions count and well-formed predicated code is never
   flagged.  The lattice is (sets of registers, ⊇), initialized to the
   full register universe and shrunk to the greatest fixpoint. *)

let defined_in_map ~params cfg =
  let rpo = Order.reverse_postorder cfg in
  let universe =
    List.fold_left
      (fun acc id ->
        let b = Cfg.block cfg id in
        let regs_of_instr (i : Instr.t) =
          IntSet.union (IntSet.of_list (Instr.defs i)) (IntSet.of_list (Instr.uses i))
        in
        List.fold_left
          (fun acc i -> IntSet.union acc (regs_of_instr i))
          (IntSet.union acc (Block.exit_uses b))
          b.Block.instrs)
      params rpo
  in
  let preds = Cfg.predecessor_map cfg in
  let out = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace out id universe) rpo;
  let defined_in id =
    if id = cfg.Cfg.entry then params
    else
      IntSet.fold
        (fun p acc ->
          match Hashtbl.find_opt out p with
          | Some s -> IntSet.inter acc s
          | None -> acc (* unreachable predecessor: no constraint *))
        (IntMap.find_or ~default:IntSet.empty id preds)
        universe
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let b = Cfg.block cfg id in
        let o = IntSet.union (defined_in id) (Block.defs b) in
        if not (IntSet.equal o (Hashtbl.find out id)) then begin
          Hashtbl.replace out id o;
          changed := true
        end)
      rpo
  done;
  (rpo, defined_in)

(* Architectural registers are machine state (readable from reset); only
   virtual registers outside [params] can be undefined. *)
let suspicious ~params r =
  r >= Machine.first_virtual_reg && not (IntSet.mem r params)

let def_use_violations ~params cfg =
  let rpo, defined_in = defined_in_map ~params cfg in
  let viols = ref [] in
  List.iter
    (fun id ->
      let b = Cfg.block cfg id in
      let avail = ref (defined_in id) in
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun r ->
              if suspicious ~params r && not (IntSet.mem r !avail) then
                let in_guard =
                  match i.Instr.guard with
                  | Some g -> g.Instr.greg = r
                  | None -> false
                in
                viols :=
                  Undefined_use { block = id; instr = Some i.Instr.id; reg = r; in_guard }
                  :: !viols)
            (Instr.uses i);
          List.iter (fun r -> avail := IntSet.add r !avail) (Instr.defs i))
        b.Block.instrs;
      IntSet.iter
        (fun r ->
          if suspicious ~params r && not (IntSet.mem r !avail) then
            viols := Undefined_use { block = id; instr = None; reg = r; in_guard = true } :: !viols)
        (Block.exit_uses b))
    rpo;
  List.rev !viols

(* ---- TRIPS budgets ----------------------------------------------------- *)

let budget_violations ~limits cfg =
  let live = Liveness.compute cfg in
  List.filter_map
    (fun (b : Block.t) ->
      let live_out = Liveness.live_out live b.Block.id in
      let estimate = Chf.Constraints.estimate b ~live_out in
      if Chf.Constraints.legal limits estimate then None
      else Some (Over_budget { block = b.Block.id; estimate; limits }))
    (Cfg.blocks cfg)

(* ---- driver ------------------------------------------------------------ *)

let check ?(allow_unreachable = false) ?(params = IntSet.empty) ?limits cfg =
  let shape = shape_violations cfg in
  let reach =
    if allow_unreachable || List.exists shape_blocks_dataflow shape then []
    else
      let reachable = Order.reachable cfg in
      List.filter_map
        (fun id ->
          if IntSet.mem id reachable then None
          else Some (Unreachable_block { block = id }))
        (Cfg.block_ids cfg)
  in
  if List.exists shape_blocks_dataflow shape then shape @ reach
  else
    let uses = def_use_violations ~params cfg in
    let budgets = match limits with None -> [] | Some l -> budget_violations ~limits:l cfg in
    shape @ reach @ uses @ budgets

let undefined_regs cfg =
  List.fold_left
    (fun acc -> function
      | Undefined_use { reg; _ } -> IntSet.add reg acc
      | _ -> acc)
    IntSet.empty
    (check ~allow_unreachable:true cfg)

exception Invalid of string * violation list

let check_exn ?allow_unreachable ?params ?limits cfg =
  match check ?allow_unreachable ?params ?limits cfg with
  | [] -> ()
  | viols -> raise (Invalid (cfg.Cfg.name, viols))

let dot_dump cfg viols =
  let highlight =
    List.sort_uniq compare
      (List.filter_map (fun v -> (locus v).at_block) viols)
  in
  Dot.to_string ~highlight cfg
