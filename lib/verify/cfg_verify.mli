(** Structural invariant checker for CFGs and formed hyperblocks.

    The paper's argument rests on hyperblocks staying structurally legal
    across an aggressive sequence of transforms: single entry, every edge
    landing on a real block, at most one unguarded exit per block, unique
    instruction ids, definitions reaching every use, and — after
    formation — the TRIPS resource budgets of {!Chf.Constraints}.  This
    module checks those invariants directly and reports a {e typed}
    violation with a block/instruction locus, so a transform that
    corrupts the graph is caught at the phase that broke it rather than
    surfacing later as an opaque checksum mismatch or crash. *)

open Trips_ir

type violation =
  | Missing_entry of { entry : int }
      (** the designated entry block does not exist *)
  | No_exit of { block : int }
  | Multiple_unguarded_exits of { block : int; count : int }
  | Dangling_edge of { block : int; target : int }
      (** an exit targets a block id with no block *)
  | Unreachable_block of { block : int }
      (** not reachable from the entry (reported unless
          [allow_unreachable]) *)
  | Duplicate_instr_id of { block : int; instr : int }
  | Undefined_use of { block : int; instr : int option; reg : int; in_guard : bool }
      (** a (virtual) register read on some path with no prior
          definition; [instr = None] when the use is an exit guard or
          return operand *)
  | Over_budget of {
      block : int;
      estimate : Chf.Constraints.estimate;
      limits : Chf.Constraints.limits;
    }  (** TRIPS structural-constraint violation (post-formation check) *)

type locus = { at_block : int option; at_instr : int option; at_reg : int option }

val locus : violation -> locus
val pp_violation : Format.formatter -> violation -> unit

val check :
  ?allow_unreachable:bool ->
  ?params:IntSet.t ->
  ?limits:Chf.Constraints.limits ->
  Cfg.t -> violation list
(** Check every invariant and return all violations found (empty = the
    CFG is well formed).

    - [allow_unreachable] (default [false]) suppresses
      {!Unreachable_block} reports;
    - [params] are registers legitimately live into the entry (workload
      parameters); architectural registers are always permitted;
    - [limits], when given, additionally checks every block against the
      TRIPS budgets via {!Chf.Constraints.estimate}.

    Definition-before-use is a forward must-be-defined dataflow over all
    definitions ({e including} predicated ones — a guarded definition
    counts, since flow-through on a false guard is legal if-conversion
    structure), so well-formed if-converted code is never flagged.

    Dataflow-dependent checks (undefined uses, budgets) are skipped when
    the graph itself is broken (missing entry, dangling edge, exitless
    block): those violations are returned alone. *)

val undefined_regs : Cfg.t -> IntSet.t
(** Registers flagged by the def-before-use analysis on this CFG, for
    building a tolerated baseline: callers verifying a {e transform}
    pass these as extra [params] so only newly-introduced undefined uses
    are reported. *)

exception Invalid of string * violation list

val check_exn :
  ?allow_unreachable:bool ->
  ?params:IntSet.t ->
  ?limits:Chf.Constraints.limits ->
  Cfg.t -> unit
(** @raise Invalid with the CFG name when {!check} finds violations. *)

val dot_dump : Cfg.t -> violation list -> string
(** Graphviz rendering of the CFG with every violation locus highlighted
    (via {!Trips_ir.Dot}), for offline diagnosis. *)
