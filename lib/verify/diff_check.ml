(* Differential per-phase checking: interleave Cfg_verify and functional
   re-simulation between the steps of a phase ordering, so the first
   transform that breaks structure or behavior is named. *)

open Trips_ir
open Trips_sim

type fail_kind =
  | Structural of Cfg_verify.violation list
  | Diverged of { got : int; expected : int }
  | Crashed of string

type failure = { phase : string; phase_index : int; kind : fail_kind }

let pp_failure fmt f =
  match f.kind with
  | Structural viols ->
    Fmt.pf fmt "@[<v>phase %s (step %d) broke structural invariants:@,%a@]"
      f.phase f.phase_index
      (Fmt.list ~sep:Fmt.cut Cfg_verify.pp_violation)
      viols
  | Diverged { got; expected } ->
    Fmt.pf fmt "phase %s (step %d) changed behavior: checksum %d, expected %d"
      f.phase f.phase_index got expected
  | Crashed msg ->
    Fmt.pf fmt "phase %s (step %d) crashed: %s" f.phase f.phase_index msg

let checksum ?fuel ~registers ~fresh_memory cfg =
  let memory = fresh_memory () in
  (Func_sim.run ?fuel ~registers ~memory cfg).Func_sim.checksum

let run ?config ?limits ?fuel ~registers ~fresh_memory ordering cfg profile =
  let expected = checksum ?fuel ~registers ~fresh_memory cfg in
  (* parameters plus any undefined uses already present: only report
     regressions introduced by a step *)
  let params =
    IntSet.union
      (IntSet.of_list (List.map fst registers))
      (Cfg_verify.undefined_regs cfg)
  in
  let stats, steps = Chf.Phases.plan ?config ordering cfg profile in
  let rec go index = function
    | [] -> Ok stats
    | (s : Chf.Phases.step) :: rest -> (
      let fail kind = Error { phase = s.Chf.Phases.step_name; phase_index = index; kind } in
      match s.Chf.Phases.step_run () with
      | exception e -> fail (Crashed (Printexc.to_string e))
      | () -> (
        match
          Cfg_verify.check ~allow_unreachable:true ~params ?limits cfg
        with
        | _ :: _ as viols -> fail (Structural viols)
        | [] -> (
          match checksum ?fuel ~registers ~fresh_memory cfg with
          | exception e -> fail (Crashed (Printexc.to_string e))
          | got when got <> expected -> fail (Diverged { got; expected })
          | _ -> go (index + 1) rest)))
  in
  go 0 steps
