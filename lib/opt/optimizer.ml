(* Optimization driver.

   [optimize_block] is the [Optimize] step from Figure 5 of the paper: it
   runs local value numbering, dead-code elimination and predicate
   optimization to a local fixpoint on one block.  Convergent formation
   calls it after every trial merge; the discrete phase orderings call
   [optimize_cfg] — dominator-based global value numbering followed by
   the per-block passes — as their whole-function "O" phase. *)

open Trips_ir
open Trips_analysis

(* The fixpoint measure counts guards too, so a predicate-optimization
   round that only drops guards still triggers another value-numbering
   round (dropped guards unlock chain folding). *)
let block_measure (b : Block.t) =
  let guards =
    List.length (List.filter (fun i -> i.Instr.guard <> None) b.Block.instrs)
  in
  (Block.size b, List.length b.Block.exits, guards)

(* Per-pass instruction-delta reporting: one trace event and one metric
   bump per pass application that changed the block.  The metric name is
   [opt.<pass>.removed_instrs]; a negative delta (a pass that grew the
   block) subtracts, keeping the counter an honest net. *)
let report_pass ~block name (before : Block.t) (after : Block.t) =
  let nb = Block.size before and na = Block.size after in
  if nb <> na then begin
    Trips_obs.Metrics.incr ~by:(nb - na)
      (Printf.sprintf "opt.%s.removed_instrs" name);
    if Trips_obs.Trace.is_enabled () then
      Trips_obs.Trace.record "opt-pass"
        [
          ("block", Trips_obs.Trace.Int block);
          ("pass", Trips_obs.Trace.Str name);
          ("before", Trips_obs.Trace.Int nb);
          ("after", Trips_obs.Trace.Int na);
        ]
  end;
  after

(** Optimize one block to a fixpoint (bounded), given the registers that
    are live when it exits. *)
let optimize_block ?(max_rounds = 6) cfg (b : Block.t) ~live_out : Block.t =
  let block = b.Block.id in
  let rec go b rounds =
    if rounds = 0 then b
    else begin
      let before = block_measure b in
      let b = report_pass ~block "local_vn" b (Local_vn.run cfg b) in
      let b = report_pass ~block "dce" b (Dce.run b ~live_out) in
      let b = report_pass ~block "predicate_opt" b (Predicate_opt.run b ~live_out) in
      if block_measure b = before then b else go b (rounds - 1)
    end
  in
  go b max_rounds

(** Live-out set of block [id] under liveness information [live]. *)
let live_out_of live id = Liveness.live_out live id

(** Optimize every reachable block of the CFG, recomputing liveness
    between rounds, until nothing changes (bounded). *)
let optimize_cfg ?(max_rounds = 4) cfg : unit =
  let rec go rounds =
    if rounds > 0 then begin
      let global_hits = Gvn.run cfg in
      if global_hits > 0 then Trips_obs.Metrics.incr ~by:global_hits "opt.gvn.hits";
      let live = Liveness.compute cfg in
      let changed = ref false in
      List.iter
        (fun id ->
          let b = Cfg.block cfg id in
          let b' = optimize_block cfg b ~live_out:(live_out_of live id) in
          if b' <> b then begin
            changed := true;
            Cfg.set_block cfg b'
          end)
        (Cfg.block_ids cfg);
      if !changed || global_hits > 0 then go (rounds - 1)
    end
  in
  go max_rounds
