(** Predicated instructions of the TRIPS intermediate language.

    Registers are plain integers: architectural registers occupy
    [0 .. Machine.num_arch_regs), virtual registers start at
    [Machine.first_virtual_reg].  Predicates are ordinary 0/1 register
    values, as in TRIPS dataflow predication: a guard [(r, sense)] allows
    the instruction to execute only when [(r <> 0) = sense].  When the
    guard fails, the instruction is nullified: it writes nothing and has
    no side effect. *)

type reg = int

type operand = Reg of reg | Imm of int

type guard = { greg : reg; sense : bool }
(** Execute only when [(greg <> 0) = sense]. *)

type op =
  | Binop of Opcode.binop * reg * operand * operand  (** [dst, src1, src2] *)
  | Cmp of Opcode.cmpop * reg * operand * operand
      (** test producing a 0/1 predicate value *)
  | Mov of reg * operand
  | Load of reg * operand * int  (** [dst <- mem\[addr + offset\]] *)
  | Store of operand * operand * int  (** [mem\[addr + offset\] <- value] *)
  | Nullw of reg
      (** Null register write: emits the current value of the register as
          a block output without changing it, satisfying the TRIPS
          constant-output constraint on predicated paths without a real
          writer. *)

type t = { id : int; op : op; guard : guard option; lineage : Lineage.t }
(** [id] is unique within a function ([Cfg] allocates them).  [lineage]
    is inert provenance — no pass reads it to make a decision and {!pp}
    never renders it. *)

val make : ?guard:guard -> ?lineage:Lineage.t -> int -> op -> t
(** [lineage] defaults to {!Lineage.unknown}. *)

val with_lineage : Lineage.t -> t -> t

val defs : t -> reg list
(** Registers written (possibly conditionally, if guarded). *)

val uses : t -> reg list
(** Registers read, including the guard register and, for [Nullw], the
    forwarded register. *)

val reg_of_operand : operand -> reg option
val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool

val has_side_effect : t -> bool
(** Instructions that may not be removed even when their results are
    unused (stores). *)

val map_operand : (reg -> reg) -> operand -> operand

val map_regs : (reg -> reg) -> t -> t
(** Rename every register the instruction mentions, guard included. *)

val pp_operand : Format.formatter -> operand -> unit
val pp_guard : Format.formatter -> guard -> unit
val pp : Format.formatter -> t -> unit
