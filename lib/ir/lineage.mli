(** Provenance records for instructions and hyperblocks.

    A lineage record names the basic block an instruction was lowered
    into ([origin], a pre-formation block id) and the transform that
    placed it in its current block.  Records ride inside {!Instr.t}, so
    they survive duplication ({!Cfg.refresh_instr_ids}), guard rewriting
    in [Combine], the optimizer, and formation's trial rollback.

    Tagging is inert — no pass reads lineage to make a decision and the
    printers never render it — so disabling provenance is byte-identical
    on every compiler output. *)

type placement =
  | Original  (** survives from the lowered basic block *)
  | If_conv of int  (** simple merge at step [n] *)
  | Tail_dup of int  (** tail-duplicated copy merged at step [n] *)
  | Unroll of int * int  (** unrolling: step [n], appended iteration [k] *)
  | Peel of int * int  (** peeling: step [n], peeled iteration [k] *)
  | Helper of string  (** machinery: ["predication"], ["fanout"] *)

type t = { origin : int; placed : placement }

val unknown : t
(** [origin = -1], [Original] — the default before stamping. *)

val set_enabled : bool -> unit
(** Programmatic override of the [TRIPS_NO_PROVENANCE] hatch (used by
    [chfc --no-provenance]). *)

val enabled : unit -> bool
(** Tagging switch: the [set_enabled] override when set, otherwise the
    [TRIPS_NO_PROVENANCE] environment hatch (non-empty disables). *)

val class_name : t -> string
(** Attribution class: ["original"], ["if_conv"], ["tail_dup"],
    ["unroll"], ["peel"], ["helper"], or ["unknown"] (never stamped).
    Every instruction falls in exactly one class. *)

val is_duplication : t -> bool
(** Placed by tail duplication, unrolling or peeling. *)

val describe : t -> string

(** {1 Hyperblock-level decisions} *)

type decision = {
  d_step : int;  (** 1-based merge step within the hyperblock *)
  d_kind : string;  (** ["simple"], ["tail_dup"], ["unroll"], ["peel"], ["split"] *)
  d_src : int;  (** block id merged in (or split off) *)
}

val decision : step:int -> kind:string -> src:int -> decision
val describe_decision : decision -> string
