(** The control-flow graph of a single function.

    The block table is mutable because hyperblock formation rewrites the
    graph heavily; blocks themselves are immutable records replaced
    wholesale, so analyses can safely retain a {!Block.t}.  Fresh-id
    counters for blocks, instructions and registers live here so that
    every transformation can allocate names without clashing. *)

type t = {
  name : string;
  mutable entry : int;
  blocks : (int, Block.t) Hashtbl.t;
  mutable next_block : int;
  mutable next_instr : int;
  mutable next_reg : int;
  decisions : (int, Lineage.decision list) Hashtbl.t;
      (** per-block formation decisions, most recent first; use
          {!decisions} for chronological access *)
  versions : (int, int) Hashtbl.t;
      (** per-block monotone version stamps; use {!block_version} /
          {!bump_version} *)
  mutable vclock : int;  (** global version clock feeding {!bump_version} *)
}

val create : ?name:string -> unit -> t

val fresh_block_id : t -> int
val fresh_instr_id : t -> int

val fresh_reg : t -> int
(** A fresh virtual register (numbered from
    {!Machine.first_virtual_reg}). *)

val instr : ?guard:Instr.guard -> ?lineage:Lineage.t -> t -> Instr.op -> Instr.t
(** Build an instruction with a fresh id. *)

val mem : t -> int -> bool

val block : t -> int -> Block.t
(** @raise Invalid_argument if the block does not exist. *)

val block_opt : t -> int -> Block.t option

val set_block : t -> Block.t -> unit
(** Insert or overwrite a block under its own id. *)

val remove_block : t -> int -> unit

val block_version : t -> int -> int
(** Version stamp of a block; 0 until the first {!bump_version}.  Not
    bumped implicitly by {!set_block}: mutators that want trial edits to
    stay version-invisible (formation rollback) bump explicitly at their
    commit points. *)

val bump_version : t -> int -> unit
(** Advance a block to a fresh, strictly larger version (global clock:
    no two bumps ever produce the same stamp). *)

val block_ids : t -> int list
(** Block ids in increasing order (deterministic iteration). *)

val blocks : t -> Block.t list
val iter_blocks : (Block.t -> unit) -> t -> unit
val num_blocks : t -> int
val total_instrs : t -> int

val successors : t -> int -> int list
(** Distinct successors of a block. *)

val predecessor_map : t -> IntSet.t IntMap.t
(** Map from block id to the set of its predecessors (recomputed). *)

val predecessors : t -> int -> int list

val copy : t -> t
(** Deep copy sharing no mutable state with the original. *)

val stamp_origins : t -> unit
(** Stamp every instruction as {!Lineage.Original} to its enclosing
    block: the baseline lineage of a freshly lowered CFG. *)

val record_decision : t -> int -> Lineage.decision -> unit
(** Append a formation decision to a block's provenance record. *)

val decisions : t -> int -> Lineage.decision list
(** Decisions recorded against a block, in chronological order. *)

val copy_decisions : t -> src:int -> dst:int -> unit
(** Copy [src]'s decision history onto [dst] (used by block splitting:
    both halves descend from the same formation history). *)

val refresh_instr_ids : t -> Block.t -> Block.t
(** Renumber every instruction with fresh ids; used when duplicating a
    block so instruction ids stay globally unique. *)

exception Ill_formed of string

val validate : t -> unit
(** Check structural well-formedness: the entry exists, every exit
    targets an existing block, every block has at least one exit, at most
    one exit is unguarded, and instruction ids are globally unique.
    @raise Ill_formed otherwise. *)

val pp : Format.formatter -> t -> unit
