(** Graphviz export of a CFG, for visual inspection of formation results
    ([dot -Tsvg out.dot]).  Nodes show instruction counts and a short
    listing; edge labels show exit guards; the entry is highlighted. *)

val emit : ?highlight:int list -> Format.formatter -> Cfg.t -> unit
(** [highlight] blocks — e.g. the loci of verifier violations — are
    filled red. *)

val to_string : ?highlight:int list -> Cfg.t -> string
