(* Graphviz export of a CFG, for visual inspection of formation results
   ("dot -Tsvg out.dot").  Nodes show instruction counts and a short
   instruction listing; edge labels show the exit guard. *)

let escape s =
  String.concat "\\l"
    (String.split_on_char '\n' (String.concat "\\\"" (String.split_on_char '"' s)))

let node_label (b : Block.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "b%d (%d instrs)\n" b.Block.id (Block.size b));
  let shown = ref 0 in
  List.iter
    (fun i ->
      if !shown < 12 then begin
        Buffer.add_string buf (Fmt.str "%a\n" Instr.pp i);
        incr shown
      end)
    b.Block.instrs;
  if Block.size b > 12 then
    Buffer.add_string buf (Printf.sprintf "... %d more\n" (Block.size b - 12));
  escape (Buffer.contents buf)

let edge_label (e : Block.exit_) =
  match e.Block.eguard with
  | None -> ""
  | Some g -> Fmt.str "%a" Instr.pp_guard g

(** Render the CFG in Graphviz dot syntax.  [highlight] blocks (e.g. the
    loci of verifier violations) are filled red. *)
let emit ?(highlight = []) fmt (cfg : Cfg.t) =
  Fmt.pf fmt "digraph %S {@." cfg.Cfg.name;
  Fmt.pf fmt "  node [shape=box, fontname=\"monospace\", fontsize=9];@.";
  Cfg.iter_blocks
    (fun b ->
      let style =
        if List.mem b.Block.id highlight then
          ", style=filled, fillcolor=\"#ffcccc\", color=red"
        else if b.Block.id = cfg.Cfg.entry then ", style=bold, color=blue"
        else ""
      in
      Fmt.pf fmt "  b%d [label=\"%s\"%s];@." b.Block.id (node_label b) style;
      List.iter
        (fun (e : Block.exit_) ->
          match e.Block.target with
          | Block.Goto d ->
            Fmt.pf fmt "  b%d -> b%d [label=\"%s\"];@." b.Block.id d
              (edge_label e)
          | Block.Ret _ ->
            Fmt.pf fmt "  b%d -> ret_%d [label=\"%s\"];@." b.Block.id
              b.Block.id (edge_label e);
            Fmt.pf fmt "  ret_%d [shape=doublecircle, label=\"ret\"];@."
              b.Block.id)
        b.Block.exits)
    cfg;
  Fmt.pf fmt "}@."

let to_string ?highlight cfg = Fmt.str "%a" (emit ?highlight) cfg
