(* Predicated instructions of the TRIPS intermediate language.

   Registers are plain integers.  Architectural registers occupy
   [0 .. Machine.num_arch_regs), virtual registers (front-end temporaries
   and optimizer-created values) start at [Machine.first_virtual_reg].
   Predicates are ordinary 0/1 register values, as in TRIPS dataflow
   predication: a guard [(r, sense)] allows the instruction to execute
   only when [r <> 0] equals [sense]. *)

type reg = int

type operand = Reg of reg | Imm of int

type guard = { greg : reg; sense : bool }

type op =
  | Binop of Opcode.binop * reg * operand * operand
  | Cmp of Opcode.cmpop * reg * operand * operand
  | Mov of reg * operand
  | Load of reg * operand * int  (* dst <- mem[addr + offset] *)
  | Store of operand * operand * int  (* mem[addr + offset] <- value *)
  | Nullw of reg
      (* Null register write: produces the current value of [reg] as a
         block output without changing it.  Inserted to satisfy the TRIPS
         constant-output constraint on predicated paths that lack a real
         writer. *)

type t = { id : int; op : op; guard : guard option; lineage : Lineage.t }

let make ?guard ?(lineage = Lineage.unknown) id op = { id; op; guard; lineage }

let with_lineage lineage i = { i with lineage }

(** Registers written by the instruction. *)
let defs i =
  match i.op with
  | Binop (_, d, _, _) | Cmp (_, d, _, _) | Mov (d, _) | Load (d, _, _) -> [ d ]
  | Store _ -> []
  | Nullw d -> [ d ]

let reg_of_operand = function Reg r -> Some r | Imm _ -> None

(** Registers read by the instruction, including its guard register and,
    for [Nullw], the forwarded register. *)
let uses i =
  let operands =
    match i.op with
    | Binop (_, _, a, b) | Cmp (_, _, a, b) | Store (a, b, _) -> [ a; b ]
    | Mov (_, a) | Load (_, a, _) -> [ a ]
    | Nullw r -> [ Reg r ]
  in
  let regs = List.filter_map reg_of_operand operands in
  match i.guard with None -> regs | Some g -> g.greg :: regs

let is_load i = match i.op with Load _ -> true | _ -> false
let is_store i = match i.op with Store _ -> true | _ -> false
let is_memory i = is_load i || is_store i

(** [has_side_effect i] holds for instructions that may not be removed
    even when their results are unused. *)
let has_side_effect i = is_store i

let map_operand f = function Reg r -> Reg (f r) | Imm n -> Imm n

(** Rename every register mentioned by the instruction with [f]. *)
let map_regs f i =
  let op =
    match i.op with
    | Binop (o, d, a, b) -> Binop (o, f d, map_operand f a, map_operand f b)
    | Cmp (o, d, a, b) -> Cmp (o, f d, map_operand f a, map_operand f b)
    | Mov (d, a) -> Mov (f d, map_operand f a)
    | Load (d, a, off) -> Load (f d, map_operand f a, off)
    | Store (v, a, off) -> Store (map_operand f v, map_operand f a, off)
    | Nullw r -> Nullw (f r)
  in
  let guard =
    match i.guard with
    | None -> None
    | Some g -> Some { g with greg = f g.greg }
  in
  { i with op; guard }

let pp_operand fmt = function
  | Reg r -> Fmt.pf fmt "r%d" r
  | Imm n -> Fmt.pf fmt "#%d" n

let pp_guard fmt g =
  Fmt.pf fmt "<%sr%d>" (if g.sense then "" else "!") g.greg

let pp fmt i =
  let pg fmt = function None -> () | Some g -> Fmt.pf fmt "%a " pp_guard g in
  match i.op with
  | Binop (o, d, a, b) ->
    Fmt.pf fmt "%a%a r%d, %a, %a" pg i.guard Opcode.pp_binop o d pp_operand a
      pp_operand b
  | Cmp (o, d, a, b) ->
    Fmt.pf fmt "%a%a r%d, %a, %a" pg i.guard Opcode.pp_cmpop o d pp_operand a
      pp_operand b
  | Mov (d, a) -> Fmt.pf fmt "%amov r%d, %a" pg i.guard d pp_operand a
  | Load (d, a, off) ->
    Fmt.pf fmt "%ald r%d, %d(%a)" pg i.guard d off pp_operand a
  | Store (v, a, off) ->
    Fmt.pf fmt "%ast %a, %d(%a)" pg i.guard pp_operand v off pp_operand a
  | Nullw r -> Fmt.pf fmt "%anullw r%d" pg i.guard r
