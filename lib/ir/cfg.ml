(* The control-flow graph of a single function.

   The block table is mutable because hyperblock formation rewrites the
   graph heavily; blocks themselves are immutable records replaced
   wholesale, so analyses can hold on to a [Block.t] safely.  Fresh-id
   counters for blocks, instructions and registers live here so that every
   transformation can allocate names without clashing. *)

type t = {
  name : string;
  mutable entry : int;
  blocks : (int, Block.t) Hashtbl.t;
  mutable next_block : int;
  mutable next_instr : int;
  mutable next_reg : int;
  decisions : (int, Lineage.decision list) Hashtbl.t;
      (* per-block formation decisions, most recent first; provenance
         side table — never consulted by any pass *)
  versions : (int, int) Hashtbl.t;
      (* per-block monotone version stamps, bumped explicitly by
         formation at commit points; absent entries read as 0 *)
  mutable vclock : int;
      (* global version clock: every bump takes the next tick, so two
         blocks never share a non-zero version *)
}

let create ?(name = "f") () =
  {
    name;
    entry = 0;
    blocks = Hashtbl.create 64;
    next_block = 0;
    next_instr = 0;
    next_reg = Machine.first_virtual_reg;
    decisions = Hashtbl.create 16;
    versions = Hashtbl.create 16;
    vclock = 0;
  }

let fresh_block_id cfg =
  let id = cfg.next_block in
  cfg.next_block <- id + 1;
  id

let fresh_instr_id cfg =
  let id = cfg.next_instr in
  cfg.next_instr <- id + 1;
  id

let fresh_reg cfg =
  let r = cfg.next_reg in
  cfg.next_reg <- r + 1;
  r

(** Build an instruction with a fresh id. *)
let instr ?guard ?lineage cfg op =
  Instr.make ?guard ?lineage (fresh_instr_id cfg) op

let mem cfg id = Hashtbl.mem cfg.blocks id

let block cfg id =
  match Hashtbl.find_opt cfg.blocks id with
  | Some b -> b
  | None -> Fmt.invalid_arg "Cfg.block: no block b%d in %s" id cfg.name

let block_opt cfg id = Hashtbl.find_opt cfg.blocks id

(** Insert or overwrite a block under its own id. *)
let set_block cfg (b : Block.t) = Hashtbl.replace cfg.blocks b.Block.id b

let remove_block cfg id = Hashtbl.remove cfg.blocks id

(** Version stamp of block [id]; 0 until the first {!bump_version}. *)
let block_version cfg id =
  Option.value ~default:0 (Hashtbl.find_opt cfg.versions id)

(** Advance [id] to a fresh, strictly larger version.  Callers decide
    the granularity: formation bumps only at commit points, so a failed
    (rolled-back) trial leaves versions untouched. *)
let bump_version cfg id =
  cfg.vclock <- cfg.vclock + 1;
  Hashtbl.replace cfg.versions id cfg.vclock

(** Block ids in increasing order (deterministic iteration). *)
let block_ids cfg =
  Hashtbl.fold (fun id _ acc -> id :: acc) cfg.blocks []
  |> List.sort compare

let blocks cfg = List.map (block cfg) (block_ids cfg)
let iter_blocks f cfg = List.iter f (blocks cfg)
let num_blocks cfg = Hashtbl.length cfg.blocks

let total_instrs cfg =
  List.fold_left (fun acc b -> acc + Block.size b) 0 (blocks cfg)

let successors cfg id = Block.distinct_successors (block cfg id)

(** Map from block id to the set of its predecessors. *)
let predecessor_map cfg =
  List.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc s ->
          let preds = IntMap.find_or ~default:IntSet.empty s acc in
          IntMap.add s (IntSet.add b.Block.id preds) acc)
        acc
        (Block.distinct_successors b))
    IntMap.empty (blocks cfg)

let predecessors cfg id =
  IntSet.elements (IntMap.find_or ~default:IntSet.empty id (predecessor_map cfg))

(** Deep copy sharing no mutable state with the original. *)
let copy cfg =
  let blocks = Hashtbl.copy cfg.blocks in
  let decisions = Hashtbl.copy cfg.decisions in
  let versions = Hashtbl.copy cfg.versions in
  { cfg with blocks; decisions; versions }

(* ---- provenance -------------------------------------------------------- *)

(** Stamp every instruction as [Original] to its enclosing block: the
    baseline lineage of a freshly lowered CFG, before any transform runs. *)
let stamp_origins cfg =
  iter_blocks
    (fun b ->
      let lineage =
        { Lineage.origin = b.Block.id; placed = Lineage.Original }
      in
      let instrs = List.map (Instr.with_lineage lineage) b.Block.instrs in
      set_block cfg { b with Block.instrs })
    cfg

(** Append a formation decision to [id]'s provenance record. *)
let record_decision cfg id d =
  let prev = Option.value ~default:[] (Hashtbl.find_opt cfg.decisions id) in
  Hashtbl.replace cfg.decisions id (d :: prev)

(** Decisions recorded against block [id], in chronological order. *)
let decisions cfg id =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt cfg.decisions id))

(** Copy the decision history of [src] onto [dst] (used when a block is
    split: both halves descend from the same formation history). *)
let copy_decisions cfg ~src ~dst =
  match Hashtbl.find_opt cfg.decisions src with
  | None -> ()
  | Some ds -> Hashtbl.replace cfg.decisions dst ds

(** Renumber every instruction in [b] with fresh ids; used when a block is
    duplicated so that instruction ids stay unique across the function. *)
let refresh_instr_ids cfg (b : Block.t) =
  let instrs =
    List.map (fun i -> { i with Instr.id = fresh_instr_id cfg }) b.Block.instrs
  in
  { b with Block.instrs }

exception Ill_formed of string

(** Check structural well-formedness: the entry exists, every exit targets
    an existing block, every block has at least one exit, at most one exit
    is unguarded, and instruction ids are globally unique.  Raises
    [Ill_formed] otherwise. *)
let validate cfg =
  if not (mem cfg cfg.entry) then
    raise (Ill_formed (Fmt.str "%s: entry b%d missing" cfg.name cfg.entry));
  let seen_ids = Hashtbl.create 256 in
  iter_blocks
    (fun b ->
      if b.Block.exits = [] then
        raise (Ill_formed (Fmt.str "%s: block b%d has no exits" cfg.name
                             b.Block.id));
      let unguarded =
        List.length
          (List.filter (fun e -> e.Block.eguard = None) b.Block.exits)
      in
      if unguarded > 1 then
        raise
          (Ill_formed
             (Fmt.str "%s: block b%d has %d unguarded exits" cfg.name
                b.Block.id unguarded));
      List.iter
        (fun s ->
          if not (mem cfg s) then
            raise
              (Ill_formed
                 (Fmt.str "%s: block b%d targets missing b%d" cfg.name
                    b.Block.id s)))
        (Block.successors b);
      List.iter
        (fun i ->
          let id = i.Instr.id in
          if Hashtbl.mem seen_ids id then
            raise
              (Ill_formed
                 (Fmt.str "%s: duplicate instruction id %d (block b%d)"
                    cfg.name id b.Block.id));
          Hashtbl.add seen_ids id ())
        b.Block.instrs)
    cfg

let pp fmt cfg =
  Fmt.pf fmt "@[<v>function %s (entry b%d, %d blocks)" cfg.name cfg.entry
    (num_blocks cfg);
  iter_blocks (fun b -> Fmt.pf fmt "@,%a" Block.pp b) cfg;
  Fmt.pf fmt "@]"
