(* Provenance records for instructions and hyperblocks.

   The paper's evaluation argues in terms of where a hyperblock's
   instructions came from — if-conversion, head duplication (unrolling
   and peeling), tail duplication — and what those placement decisions
   cost at runtime.  A lineage record names the basic block an
   instruction was lowered into ([origin], a block id of the pre-formation
   CFG) and the transform that placed it into its current block
   ([placed]).  Records ride inside [Instr.t], so they survive every
   rewrite that copies an instruction record ([Cfg.refresh_instr_ids],
   guard conjunction in [Combine], the optimizer's in-place rewrites) and
   they roll back with the block bodies on a failed formation trial.

   Tagging is inert: no pass reads lineage to make a decision, and the
   printers never render it, so compilation with provenance disabled is
   byte-identical on every output (enforced by a test). *)

type placement =
  | Original  (* survives from the lowered basic block *)
  | If_conv of int  (* simple (unique-predecessor) merge at step N *)
  | Tail_dup of int  (* tail-duplicated copy merged at step N *)
  | Unroll of int * int  (* head-dup unrolling: step N, appended iteration K *)
  | Peel of int * int  (* head-dup peeling: step N, peeled iteration K *)
  | Helper of string  (* machinery: "predication" movs/ands, "fanout" movs *)

type t = { origin : int; placed : placement }

let unknown = { origin = -1; placed = Original }

(* ---- off switch -------------------------------------------------------- *)

(* [TRIPS_NO_PROVENANCE] follows the repo's hatch convention (any
   non-empty value disables); [set_enabled] is the programmatic override
   behind [chfc --no-provenance].  The switch gates tagging at every
   producer, so with it off all records stay [unknown]. *)
let override = ref None

let set_enabled b = override := Some b

let enabled () =
  match !override with
  | Some b -> b
  | None -> (
    match Sys.getenv_opt "TRIPS_NO_PROVENANCE" with
    | Some s when s <> "" -> false
    | Some _ | None -> true)

(* ---- classification ---------------------------------------------------- *)

(* The attribution classes of the per-block utilization report.  Every
   instruction falls in exactly one, so per-class fetched-slot counts
   partition the fetch total. *)
let class_name t =
  match t.placed with
  | Original -> if t.origin < 0 then "unknown" else "original"
  | If_conv _ -> "if_conv"
  | Tail_dup _ -> "tail_dup"
  | Unroll _ -> "unroll"
  | Peel _ -> "peel"
  | Helper _ -> "helper"

(** Instructions placed by a duplicating transform — the "duplicated
    work" the paper weighs against branch removal. *)
let is_duplication t =
  match t.placed with
  | Tail_dup _ | Unroll _ | Peel _ -> true
  | Original | If_conv _ | Helper _ -> false

let describe t =
  let from_ =
    if t.origin < 0 then "" else Fmt.str " from b%d" t.origin
  in
  match t.placed with
  | Original -> if t.origin < 0 then "unknown" else Fmt.str "original%s" from_
  | If_conv n -> Fmt.str "if-conv step %d%s" n from_
  | Tail_dup n -> Fmt.str "tail-dup step %d%s" n from_
  | Unroll (n, k) -> Fmt.str "unroll step %d iter %d%s" n k from_
  | Peel (n, k) -> Fmt.str "peel step %d iter %d%s" n k from_
  | Helper what -> Fmt.str "%s helper%s" what from_

(* ---- hyperblock-level decisions ---------------------------------------- *)

(* One record per successful formation merge (or back-end split) into a
   block, kept chronologically in the CFG's side table; the report's
   "formation decisions that built this block" column renders them. *)
type decision = {
  d_step : int;  (* 1-based merge step within the hyperblock *)
  d_kind : string;  (* "simple" | "tail_dup" | "unroll" | "peel" | "split" *)
  d_src : int;  (* block id merged in (or split off) *)
}

let decision ~step ~kind ~src = { d_step = step; d_kind = kind; d_src = src }

let describe_decision d =
  Fmt.str "step %d: %s b%d" d.d_step d.d_kind d.d_src
