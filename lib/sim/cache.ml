(* Direct-mapped L1 data cache model (word-addressed).

   Only hit/miss classification matters to the timing model; data always
   comes from the functional memory.  Deterministic. *)

type t = {
  tags : int array;  (* -1 = invalid *)
  line_words : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(size_words = 2048) ?(line_words = 8) () =
  { tags = Array.make (size_words / line_words) (-1); line_words; accesses = 0; misses = 0 }

(** Access [addr]; returns [true] on hit and updates the cache. *)
let access t ~addr =
  t.accesses <- t.accesses + 1;
  let line = addr / t.line_words in
  let set = line mod Array.length t.tags in
  if t.tags.(set) = line then true
  else begin
    t.misses <- t.misses + 1;
    t.tags.(set) <- line;
    false
  end

let counters t = (t.accesses, t.misses)

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses
