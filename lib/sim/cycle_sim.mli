(** Trace-driven TRIPS cycle-level timing model.

    The functional simulator supplies, per dynamic block instance, which
    instructions fired, the memory addresses touched and the exit that
    fired; this module converts that trace into cycles online.  It
    charges the costs the paper's analysis rests on: per-block mapping
    overhead (the [overhead] term of the Section 7.3 cost equation),
    dataflow issue with operand-network hops and 16-wide contention,
    dataflow predication (nullified instructions never issue; guarded
    instructions wait for their predicate — the bzip2_3 effect),
    speculative next-block fetch with an 8-block window, in-order commit
    and misprediction flushes from branch-resolution time, block commit
    on all-outputs-produced, and a small direct-mapped L1.

    Cross-block register dependences flow through producer completion
    times, keeping loop-carried chains serial no matter how many blocks
    are in flight.

    The default path runs an event-driven fast core (bounded ring issue
    allocator, batched operand wakeup, memoized repeated-block timing;
    DESIGN.md §16) whose outputs are byte-identical to the legacy
    per-instruction path; [TRIPS_NO_SIM_FAST] and [TRIPS_NO_SIM_MEMO]
    (any non-empty value) disable the pieces.  Sampled mode ([sample])
    is the only approximation and is off by default. *)

open Trips_ir

type timing = {
  fetch_bandwidth : int;  (** instructions mapped per cycle *)
  block_overhead : int;  (** fixed per-block dispatch/map cost *)
  issue_width : int;
  operand_hop : int;  (** operand-network latency per grid hop *)
  spatial_grid : int;
      (** side of the ALU grid for the unoptimized-placement mode:
          producer-to-consumer latency becomes [operand_hop] times the
          Manhattan distance between round-robin placements.  [0] (the
          default) charges a flat hop per edge, approximating a
          well-optimized SPDI placement; the grid mode quantifies what
          placement quality is worth. *)
  reg_read_latency : int;  (** block-input availability after dispatch *)
  miss_penalty : int;  (** added to a load's latency on L1 miss *)
  flush_penalty : int;  (** misprediction redirect cost *)
  commit_overhead : int;
  window_blocks : int;
  cache_size_words : int;
  cache_line_words : int;
}

val default_timing : timing

type result = {
  cycles : int;
  blocks : int;
  instrs_fired : int;
  instrs_fetched : int;
  mispredictions : int;
  predictor_accuracy : float;
  cache_miss_rate : float;
  sample_error_bound : float option;
      (** sampled mode only: measured extrapolation drift as a fraction
          of total cycles — the sum over measured instances of
          |predicted − real commit delta| × instances skipped since the
          last measurement, divided by [cycles].  [None] in exact
          mode. *)
  ret : int option;
  checksum : int;
}

val run :
  ?timing:timing ->
  ?trace:int ->
  ?trace_ppf:Format.formatter ->
  ?sample:int ->
  ?attribution:Attribution.t ->
  ?fuel:int ->
  ?strict_exits:bool ->
  ?registers:(int * int) list ->
  memory:int array ->
  Cfg.t ->
  result
(** Functionally identical to {!Func_sim.run}; additionally reports
    cycles and microarchitectural statistics.  [trace] prints retire
    timing for the first N block instances to [trace_ppf] (default
    stderr).  [sample >= 2] enables sampled simulation: once a block
    signature has recurred enough to be considered converged, only
    every [sample]-th instance is re-timed and the rest replay the last
    measurement; the resulting drift is measured and reported in
    [sample_error_bound].  [attribution] collects per-block,
    per-lineage-class fetch/fire counts, cycle shares (commit-time
    deltas, partitioning the run total) and flushes; attribution never
    changes timing. *)
