(* Next-block predictor.

   TRIPS fetches speculatively along a predicted block sequence; a wrong
   prediction flushes the (up to seven) speculative blocks.  We model a
   two-level predictor indexed by the current block and a short history of
   recent successor choices, with per-entry hysteresis: the stored target
   is replaced only after two consecutive misses, which keeps loop-exit
   behaviour realistic (one misprediction per loop exit, not a flapping
   predictor).  Deterministic by construction. *)

type entry = { mutable target : int; mutable confidence : int }

type t = {
  table : (int, entry) Hashtbl.t;
  mutable history : int;
  history_bits : int;
  mutable lookups : int;
  mutable hits : int;
}

let create ?(history_bits = 6) () =
  { table = Hashtbl.create 256; history = 0; history_bits; lookups = 0; hits = 0 }

let index t block =
  let mask = (1 lsl t.history_bits) - 1 in
  (block * 37) lxor (t.history land mask)

(** Predict the successor of [block]; [None] when no information exists
    yet (treated as a misprediction by the caller). *)
let predict t ~block =
  match Hashtbl.find_opt t.table (index t block) with
  | Some e -> Some e.target
  | None -> None

(** Record the actual successor; returns [true] when the prediction was
    correct. *)
let update t ~block ~actual =
  t.lookups <- t.lookups + 1;
  let idx = index t block in
  let correct =
    match Hashtbl.find_opt t.table idx with
    | Some e when e.target = actual ->
      e.confidence <- min 3 (e.confidence + 1);
      true
    | Some e ->
      if e.confidence > 0 then e.confidence <- e.confidence - 1
      else begin
        e.target <- actual;
        e.confidence <- 1
      end;
      false
    | None ->
      Hashtbl.replace t.table idx { target = actual; confidence = 1 };
      false
  in
  if correct then t.hits <- t.hits + 1;
  t.history <- (t.history lsl 2) lxor (actual land 0xff);
  correct

let counters t = (t.lookups, t.hits)

let accuracy t =
  if t.lookups = 0 then 1.0 else float_of_int t.hits /. float_of_int t.lookups
