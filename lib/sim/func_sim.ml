(* Functional (architectural) simulator.

   Interprets a CFG over an integer register file and a word-addressed
   memory.  It executes basic blocks and predicated hyperblocks uniformly:
   instructions run in program order, an instruction fires only when its
   guard holds, and the block's exit is the unique exit whose guard holds.
   Strict mode asserts that uniqueness, which is the central dataflow
   invariant every transformation must preserve.

   Semantics are total: memory addresses are wrapped into the memory size,
   a zero-length memory reads 0 and absorbs stores, division by zero
   yields zero, so speculative code can never fault — mirroring how an
   EDGE machine squashes mis-speculated work.

   The simulator reports block and instruction counts (the paper's
   Table 3 metric) and exposes per-step hooks used by the profiler and by
   the cycle-level timing model. *)

open Trips_ir

exception Out_of_fuel of string
exception Exit_invariant_violated of string

type hooks = {
  on_block : int -> unit;  (* dynamic block instance begins *)
  on_instr : Instr.t -> fired:bool -> addr:int option -> unit;
      (* per instruction in program order; [addr] for memory operations *)
  on_exit : Block.exit_ -> unit;  (* the exit that fired *)
}

let no_hooks =
  {
    on_block = (fun _ -> ());
    on_instr = (fun _ ~fired:_ ~addr:_ -> ());
    on_exit = (fun _ -> ());
  }

type result = {
  ret : int option;  (* value returned by the final Ret, if any *)
  blocks_executed : int;
  instrs_executed : int;  (* instructions whose guard held *)
  instrs_fetched : int;  (* all instructions of executed blocks *)
  checksum : int;  (* digest of return value and final memory *)
}

type state = {
  regs : (int, int) Hashtbl.t;
  memory : int array;
  mutable fuel : int;
}

let read_reg st r = Option.value ~default:0 (Hashtbl.find_opt st.regs r)
let write_reg st r v = Hashtbl.replace st.regs r v

let operand_value st = function
  | Instr.Reg r -> read_reg st r
  | Instr.Imm n -> n

let guard_holds st = function
  | None -> true
  | Some g -> read_reg st g.Instr.greg <> 0 = g.Instr.sense

let wrap_addr st a =
  let n = Array.length st.memory in
  if n = 0 then 0 else ((a mod n) + n) mod n

(* Execute one instruction; returns the memory address touched, if any.
   A zero-length memory has no addresses at all: loads read 0, stores
   vanish, and neither reports an address (there is no memory system to
   charge), keeping the semantics total on every input. *)
let exec_instr st i =
  match i.Instr.op with
  | Instr.Binop (op, d, a, b) ->
    write_reg st d (Opcode.eval_binop op (operand_value st a) (operand_value st b));
    None
  | Instr.Cmp (op, d, a, b) ->
    write_reg st d (Opcode.eval_cmp op (operand_value st a) (operand_value st b));
    None
  | Instr.Mov (d, a) ->
    write_reg st d (operand_value st a);
    None
  | Instr.Load (d, a, off) ->
    if Array.length st.memory = 0 then begin
      write_reg st d 0;
      None
    end
    else begin
      let addr = wrap_addr st (operand_value st a + off) in
      write_reg st d st.memory.(addr);
      Some addr
    end
  | Instr.Store (v, a, off) ->
    if Array.length st.memory = 0 then None
    else begin
      let addr = wrap_addr st (operand_value st a + off) in
      st.memory.(addr) <- operand_value st v;
      Some addr
    end
  | Instr.Nullw _ -> None

let memory_checksum memory =
  Array.fold_left (fun acc v -> (acc * 31) + v) 5381 memory

(** Run [cfg] to completion (first firing [Ret] exit).

    @param fuel maximum dynamic instructions before raising [Out_of_fuel].
    @param strict_exits check that exactly one exit guard holds per block.
    @param registers initial register values (e.g. kernel parameters).
    @param memory the data memory, mutated in place. *)
let run ?(fuel = 50_000_000) ?(strict_exits = true) ?(hooks = no_hooks)
    ?(registers = []) ~memory cfg =
  let st = { regs = Hashtbl.create 256; memory; fuel } in
  List.iter (fun (r, v) -> write_reg st r v) registers;
  let blocks_executed = ref 0 in
  let instrs_executed = ref 0 in
  let instrs_fetched = ref 0 in
  let rec step id =
    (* watchdog: one poll per dynamic block.  Fuel only bounds dynamic
       *instructions*, so an empty self-looping block would spin forever
       without this; under an active scope the spin becomes a structured
       [Watchdog.Timed_out] instead. *)
    Trips_obs.Watchdog.check ();
    let b = Cfg.block cfg id in
    incr blocks_executed;
    hooks.on_block id;
    List.iter
      (fun i ->
        (* check-then-spend: fuel is the number of dynamic instructions
           the run may execute, so a program needing exactly [fuel]
           instructions completes and the [fuel+1]-th raises.  (The old
           spend-then-check order made [fuel = n] admit only n-1.) *)
        if st.fuel <= 0 then
          raise (Out_of_fuel (Fmt.str "%s: fuel exhausted in b%d" cfg.Cfg.name id));
        st.fuel <- st.fuel - 1;
        incr instrs_fetched;
        let fired = guard_holds st i.Instr.guard in
        let addr = if fired then exec_instr st i else None in
        if fired then incr instrs_executed;
        hooks.on_instr i ~fired ~addr)
      b.Block.instrs;
    let holding =
      List.filter (fun e -> guard_holds st e.Block.eguard) b.Block.exits
    in
    (match holding with
    | [] ->
      raise
        (Exit_invariant_violated
           (Fmt.str "%s: no exit guard holds in b%d" cfg.Cfg.name id))
    | _ :: _ :: _ when strict_exits ->
      raise
        (Exit_invariant_violated
           (Fmt.str "%s: %d exit guards hold in b%d" cfg.Cfg.name
              (List.length holding) id))
    | _ -> ());
    let e = List.hd holding in
    hooks.on_exit e;
    match e.Block.target with
    | Block.Goto next -> step next
    | Block.Ret v -> Option.map (operand_value st) v
  in
  let ret = step cfg.Cfg.entry in
  let checksum =
    (memory_checksum memory * 31) + Option.value ~default:(-1) ret
  in
  Trips_obs.Metrics.incr ~by:!blocks_executed "sim.func.blocks";
  Trips_obs.Metrics.incr ~by:!instrs_executed "sim.func.instrs_executed";
  Trips_obs.Metrics.incr ~by:!instrs_fetched "sim.func.instrs_fetched";
  {
    ret;
    blocks_executed = !blocks_executed;
    instrs_executed = !instrs_executed;
    instrs_fetched = !instrs_fetched;
    checksum;
  }

(** Run while collecting an edge/block/trip-count profile; returns the
    result and the profile.  Loop information, when provided, enables
    trip-count histograms. *)
let run_profiled ?fuel ?strict_exits ?registers ?loops ~memory cfg =
  let collector = Trips_profile.Profile.collector ?loops () in
  let hooks =
    {
      no_hooks with
      on_block = (fun id -> Trips_profile.Profile.record_block collector id);
    }
  in
  let result = run ?fuel ?strict_exits ~hooks ?registers ~memory cfg in
  (result, Trips_profile.Profile.finish collector)
