(** Direct-mapped L1 data cache model (word-addressed).

    Only hit/miss classification matters to the timing model; data always
    comes from the functional memory.  Deterministic. *)

type t

val create : ?size_words:int -> ?line_words:int -> unit -> t

val access : t -> addr:int -> bool
(** [true] on hit; updates the cache. *)

val counters : t -> int * int
(** [(accesses, misses)] so far. *)

val miss_rate : t -> float
