(* Runtime attribution of simulated work back to lineage classes.

   The collector answers the question the paper's evaluation keeps
   asking: of everything a hyperblock fetched, executed and paid cycles
   for, how much was original work and how much was placed there by a
   formation decision (if-conversion, tail duplication, unrolling,
   peeling, predication helpers)?  [Cycle_sim] feeds it per retired
   block instance (fetch slots, fired instructions, the block's share of
   total cycles, flushes); [Func_sim] can feed it through {!hooks} when
   only functional counts are wanted.

   Counting rule: every dynamic fetch slot is attributed to exactly one
   lineage class — the class of its instruction's lineage record — so
   the per-class fetched counts partition a block's fetch total, and
   per-block cycle shares partition the run's total cycles. *)

open Trips_ir

type class_stats = { mutable c_fetched : int; mutable c_fired : int }

type block_stats = {
  b_id : int;
  mutable executions : int;  (* dynamic block instances *)
  mutable fetched : int;  (* dynamic instruction slots mapped *)
  mutable fired : int;  (* slots that actually executed *)
  mutable cycles : int;  (* this block's share of total cycles *)
  mutable flushes : int;  (* mispredictions resolved by this block *)
  classes : (string, class_stats) Hashtbl.t;
}

type t = { blocks : (int, block_stats) Hashtbl.t }

let create () = { blocks = Hashtbl.create 32 }

let block_stats t id =
  match Hashtbl.find_opt t.blocks id with
  | Some b -> b
  | None ->
    let b =
      {
        b_id = id;
        executions = 0;
        fetched = 0;
        fired = 0;
        cycles = 0;
        flushes = 0;
        classes = Hashtbl.create 4;
      }
    in
    Hashtbl.add t.blocks id b;
    b

let class_stats (b : block_stats) name =
  match Hashtbl.find_opt b.classes name with
  | Some c -> c
  | None ->
    let c = { c_fetched = 0; c_fired = 0 } in
    Hashtbl.add b.classes name c;
    c

let count_execution t ~block =
  let b = block_stats t block in
  b.executions <- b.executions + 1

let count_instr t ~block (i : Instr.t) ~fired =
  let b = block_stats t block in
  b.fetched <- b.fetched + 1;
  if fired then b.fired <- b.fired + 1;
  let c = class_stats b (Lineage.class_name i.Instr.lineage) in
  c.c_fetched <- c.c_fetched + 1;
  if fired then c.c_fired <- c.c_fired + 1

let add_cycles t ~block n =
  let b = block_stats t block in
  b.cycles <- b.cycles + n

let add_flush t ~block =
  let b = block_stats t block in
  b.flushes <- b.flushes + 1

(* ---- functional-simulator plumbing ------------------------------------- *)

(** Hooks that feed the collector from a plain {!Func_sim} run (no cycle
    or flush attribution — those need the timing model). *)
let hooks t : Func_sim.hooks =
  let cur = ref (-1) in
  {
    Func_sim.on_block =
      (fun id ->
        cur := id;
        count_execution t ~block:id);
    on_instr =
      (fun i ~fired ~addr:_ ->
        if !cur >= 0 then count_instr t ~block:!cur i ~fired);
    on_exit = (fun _ -> ());
  }

(* ---- export ------------------------------------------------------------- *)

type row = {
  r_block : int;
  r_execs : int;
  r_fetched : int;
  r_fired : int;
  r_cycles : int;
  r_flushes : int;
  r_classes : (string * int * int) list;
      (* (class, fetched, fired), sorted by class name *)
}

(** Plain-data rows sorted by block id; class lists sorted by name, so
    rows are deterministic however the run interleaved. *)
let rows t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun a b -> compare a.b_id b.b_id)
  |> List.map (fun b ->
         let classes =
           Hashtbl.fold
             (fun name c acc -> (name, c.c_fetched, c.c_fired) :: acc)
             b.classes []
           |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
         in
         {
           r_block = b.b_id;
           r_execs = b.executions;
           r_fetched = b.fetched;
           r_fired = b.fired;
           r_cycles = b.cycles;
           r_flushes = b.flushes;
           r_classes = classes;
         })
