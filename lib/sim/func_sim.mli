(** Functional (architectural) simulator.

    Interprets a CFG over an integer register file and a word-addressed
    memory, executing basic blocks and predicated hyperblocks uniformly:
    instructions run in program order, an instruction fires only when its
    guard holds, and the block's exit is the unique exit whose guard
    holds.  Strict mode asserts that uniqueness — the central dataflow
    invariant every transformation must preserve.

    Semantics are total (addresses wrap, a zero-length memory reads 0
    and absorbs stores, division by zero yields zero), so speculative
    code can never fault.  Reports block and instruction
    counts (the paper's Table 3 metric) and exposes per-step hooks used
    by the profiler and the cycle-level timing model. *)

open Trips_ir

exception Out_of_fuel of string
exception Exit_invariant_violated of string

type hooks = {
  on_block : int -> unit;  (** a dynamic block instance begins *)
  on_instr : Instr.t -> fired:bool -> addr:int option -> unit;
      (** per instruction in program order; [addr] for memory operations *)
  on_exit : Block.exit_ -> unit;  (** the exit that fired *)
}

val no_hooks : hooks

type result = {
  ret : int option;  (** value returned by the final [Ret], if any *)
  blocks_executed : int;
  instrs_executed : int;  (** instructions whose guard held *)
  instrs_fetched : int;  (** all instructions of executed blocks *)
  checksum : int;  (** digest of the return value and final memory *)
}

val memory_checksum : int array -> int

val run :
  ?fuel:int ->
  ?strict_exits:bool ->
  ?hooks:hooks ->
  ?registers:(int * int) list ->
  memory:int array ->
  Cfg.t ->
  result
(** Run to completion (first firing [Ret] exit).  [memory] is mutated in
    place; [registers] preloads parameter values.
    @param fuel dynamic-instruction bound (default 50M); a run that
    needs exactly [fuel] instructions completes.
    @raise Out_of_fuel when exceeded.
    @raise Exit_invariant_violated when no exit guard holds, or — with
    [strict_exits] (default true) — more than one does. *)

val run_profiled :
  ?fuel:int ->
  ?strict_exits:bool ->
  ?registers:(int * int) list ->
  ?loops:Trips_analysis.Loops.t ->
  memory:int array ->
  Cfg.t ->
  result * Trips_profile.Profile.t
(** Run while collecting an edge/block/trip-count profile.  Loop
    information, when provided, enables trip-count histograms. *)
