(* Trace-driven TRIPS cycle-level timing model.

   The functional simulator supplies, per dynamic block instance, which
   instructions fired, the memory addresses they touched and the exit that
   fired; this module converts that trace into cycles online (no trace is
   stored).  The model charges the costs the paper's analysis rests on:

   - per-block *mapping overhead*: a fixed dispatch cost plus fetch
     bandwidth, amortized better by fuller blocks (the [overhead] term of
     the Section 7.3 cost equation);
   - *dataflow issue*: an instruction becomes ready when its operands —
     including its predicate — are produced, plus an operand-network hop;
     issue contends for the 16-wide execution resources;
   - *dataflow predication*: nullified (guard-false) instructions never
     issue; guarded instructions wait for their guard, which is exactly
     why tail-duplicating an induction-variable update serializes an
     otherwise parallel loop (the bzip2_3 effect);
   - *speculative next-block fetch*: up to 8 blocks in flight, in-order
     commit, and a flush penalty paid from branch-resolution time on a
     next-block misprediction;
   - *block commit*: a block commits once all its outputs (register
     writes, stores, the branch) are produced — a short untaken path
     never waits for a long one, the key EDGE/VLIW contrast of Section 5;
   - a small direct-mapped L1 with per-access hit/miss latency.

   Cross-block dependences flow through [reg_ready]: a consumer of a
   register written by an earlier block waits for the producing write,
   which keeps loop-carried dependence chains serial no matter how many
   blocks are in flight.

   Two fast paths (DESIGN.md §16) make this the cheap stage of a sweep
   without changing a single output byte:

   - an *event-driven issue core*: block events land in flat machine
     buffers straight from the functional hooks (no per-instruction
     allocation), cache probes and the fired bitmask fold into that same
     pass, and issue-slot occupancy lives in a bounded ring whose slots
     are tagged with the absolute cycle they represent.  Cycles below
     the current block's dispatch point are dead by construction (every
     future probe starts at or after it), so stale slots are reclaimed
     lazily by tag comparison and the ring only ever spans the
     in-flight window, not the whole simulated time axis.  Operand
     wakeup is batched: the per-block availability table is seeded once
     with every external input's effective readiness (max of the
     register-read latency and the producer's completion plus a network
     hop — a lossless clamp, since every early-enough producer
     collapses to the same effective time) instead of consulting two
     hash tables per operand use;
   - *memoized block timing*: a block instance is keyed by its
     signature (block id, firing exit's guard register, fired bitmask)
     plus the clamped external-input readiness deltas and the load
     miss pattern.  On a key repeat, the recorded timing replays —
     commit/branch offsets, register exports and issue-slot
     insertions — after verifying that the pre-existing issue
     occupancy over the block's span matches the recording, which
     makes the replay bit-exact (every absolute quantity enters the
     computation only as a difference from the dispatch point).

   [TRIPS_NO_SIM_FAST] (any non-empty value) routes issue allocation
   back through the legacy per-cycle hashtable; [TRIPS_NO_SIM_MEMO]
   disables the memo; with both engaged the original per-instruction
   code path runs verbatim.  A sampled mode ([sample] >= 2, default
   off) additionally extrapolates converged block instances from their
   memo entries without re-timing issue contention, reporting a
   measured drift bound — the only mode allowed to deviate from the
   exact path. *)

open Trips_ir

type timing = {
  fetch_bandwidth : int;  (* instructions mapped per cycle *)
  block_overhead : int;  (* fixed per-block dispatch/map cost *)
  issue_width : int;
  operand_hop : int;  (* operand-network latency per grid hop *)
  spatial_grid : int;
      (* side of the ALU grid for the *unoptimized-placement* mode:
         instructions are placed round-robin and producer->consumer
         latency is operand_hop * Manhattan distance.  0 (the default)
         charges a flat operand_hop per edge, which approximates a
         well-optimized SPDI placement; the grid mode exists to quantify
         what placement quality is worth. *)
  reg_read_latency : int;  (* block input availability after dispatch *)
  miss_penalty : int;  (* added to a load's latency on L1 miss *)
  flush_penalty : int;  (* misprediction redirect cost *)
  commit_overhead : int;
  window_blocks : int;
  cache_size_words : int;
  cache_line_words : int;
}

let default_timing =
  {
    fetch_bandwidth = Machine.issue_width;
    block_overhead = 6;
    issue_width = Machine.issue_width;
    operand_hop = 1;
    spatial_grid = 0;
    reg_read_latency = 2;
    miss_penalty = 12;
    flush_penalty = 12;
    commit_overhead = 2;
    window_blocks = Machine.max_blocks_in_flight;
    cache_size_words = 2048;
    cache_line_words = 8;
  }

type result = {
  cycles : int;
  blocks : int;
  instrs_fired : int;
  instrs_fetched : int;
  mispredictions : int;
  predictor_accuracy : float;
  cache_miss_rate : float;
  sample_error_bound : float option;
  ret : int option;
  checksum : int;
}

(* ---- fast-path configuration ------------------------------------------- *)

(* [TRIPS_NO_X] convention: any non-empty value disables the feature. *)
let hatch_enabled name =
  match Sys.getenv_opt name with None | Some "" -> false | Some _ -> true

type fast_config = {
  fc_fast : bool;  (* ring issue core + batched operand wakeup *)
  fc_memo : bool;  (* repeated-block timing memo *)
  fc_sample : int;  (* >= 2: re-time every Nth converged instance *)
}

(* a signature must repeat this many times before sampling may skip it *)
let sample_converge = 4

(* memo guards: blocks whose issue span outruns the window bound are not
   worth replaying, and a runaway key population stops growing *)
let memo_max_span = 4096
let memo_max_entries = 16384

let config_of_env ~sample =
  let sample = if sample >= 2 then sample else 0 in
  {
    fc_fast = not (hatch_enabled "TRIPS_NO_SIM_FAST");
    (* sampled mode extrapolates from memo entries, so it implies the
       memo machinery even when the hatch is engaged *)
    fc_memo = (not (hatch_enabled "TRIPS_NO_SIM_MEMO")) || sample > 0;
    fc_sample = sample;
  }

(* ---- memo tables -------------------------------------------------------- *)

(* Instance signature: everything structural — block id, the firing
   exit's guard register (-1 for none) and the fired bitmask; the mask
   determines the instruction/def/use sequence and the guard the branch
   resolution input, both per-dynamic-instance (predication).  Stored as
   a per-block list probed with inline integer comparisons against the
   live event buffers, so a lookup allocates nothing. *)
type sig_cell = { sc_guard : int; sc_mask : int array; sc_info : sig_info }

(* Instance key under a signature: the numeric inputs.  Deltas are the
   external inputs' effective readiness relative to dispatch-end — the
   clamp at [reg_read_latency] is lossless quantization (any producer
   finishing earlier yields the same effective time).  Miss bits carry
   the load hit/miss pattern the event pass resolved.  Entries live in
   an int-hashed bucket table probed with reusable scratch buffers;
   keys are snapshotted only when a new entry is stored. *)
and inst_key = { ik_deltas : int array; ik_miss : int array }

(* Recorded timing, all relative to dispatch-end: replaying under equal
   keys and equal pre-existing issue occupancy is exact because the
   computation is translation-invariant in absolute time. *)
and memo_entry = {
  e_span : int;  (* issue-occupancy span length *)
  e_pre : int array;  (* pre-existing occupancy over the span *)
  e_iss : int array;  (* this instance's issue insertions *)
  e_done_off : int;  (* block_done - dispatch_end *)
  e_branch_off : int;  (* branch_time - dispatch_end *)
  e_exports : (int * int) array;  (* reg, completion - dispatch_end *)
}

(* Per-signature static analysis.  Registers are renumbered into dense
   slots [0, si_nregs), so the per-instance operand-availability table
   is a pair of flat arrays instead of a hashtable; [si_names] maps a
   slot back to its architectural register for the export side. *)
and sig_info = {
  si_ext : int array;  (* external input registers, first-use order *)
  si_ext_slots : int array;  (* their dense slots, aligned with si_ext *)
  si_names : int array;  (* slot -> architectural register *)
  si_nregs : int;
  si_guard_slot : int;  (* firing exit's guard slot, -1 for none *)
  si_uses : int array array;  (* use slots per fired instruction *)
  si_defs : int array array;  (* def slots per fired instruction *)
  si_entries : (int, (inst_key * memo_entry) list) Hashtbl.t;
      (* int-hashed buckets; collisions resolved by full key compare *)
  mutable si_seen : int;  (* dynamic instances of this signature *)
  mutable si_tick : int;  (* sampling phase counter *)
  mutable si_skipped : int;  (* skips since the last measurement *)
}

let dummy_instr = Instr.make 0 (Instr.Mov (0, Instr.Imm 0))

(* Mutable per-run machine state. *)
type machine = {
  t : timing;
  fc : fast_config;
  trace : int ref;  (* block instances still to trace *)
  trace_ppf : Format.formatter;
  predictor : Predictor.t;
  cache : Cache.t;
  reg_ready : (int, int) Hashtbl.t;  (* register -> producer completion *)
  issue_load : (int, int) Hashtbl.t;  (* legacy allocator: cycle -> issued *)
  (* ring allocator: slot [c land ring_mask] holds cycle [ring_tags],
     occupancy [ring_used]; tags below the current dispatch point are
     dead and reclaimed lazily *)
  mutable ring_tags : int array;
  mutable ring_used : int array;
  mutable ring_mask : int;
  mutable ring_grows : int;
  sigs : (int, sig_cell list) Hashtbl.t;  (* block id -> signatures *)
  (* fast-path event buffers, filled by the functional hooks in program
     order with no per-instruction allocation: instruction, fired flag,
     touched address (-1 for none), plus the fired bitmask, load-miss
     bits and fired count folded into the same pass *)
  mutable ev_ins : Instr.t array;
  mutable ev_fired : bool array;
  mutable ev_addr : int array;
  mutable ev_mask : int array;
  mutable ev_miss : int array;
  mutable ev_n : int;
  mutable ev_fired_n : int;
  (* reused per-block scratch, cleared instead of reallocated (hot
     path): the slot-indexed operand-availability table (completion and
     producer index; producer -2 = unset, -1 = external input with the
     hop folded in), the issue-cycle buffer, and the memo-key deltas *)
  mutable avail_c : int array;
  mutable avail_p : int array;
  mutable issue_buf : int array;
  mutable issue_n : int;
  mutable delta_buf : int array;
  mutable memo_entries : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable sampled_skips : int;
  mutable sample_err : int;  (* accumulated extrapolation drift, cycles *)
  mutable prev_dispatch_end : int;
  mutable last_commit : int;
  commit_ring : int array;  (* commit times of the last [window] blocks *)
  mutable block_index : int;
  mutable redirect_at : int;  (* earliest next fetch after a misprediction *)
  mutable mispredictions : int;
  mutable instrs_fired : int;
  mutable instrs_fetched : int;
  (* current block instance being accumulated *)
  mutable cur_block : int;
  mutable cur_events : (Instr.t * bool * int option) list;  (* reversed *)
  mutable cur_exit : Block.exit_ option;
  mutable started : bool;
}

let ring_initial_capacity = 256
let ev_initial_capacity = 256

let make_machine ?(trace = 0) ?(trace_ppf = Fmt.stderr) ?(sample = 0) t =
  {
    t;
    fc = config_of_env ~sample;
    trace = ref trace;
    trace_ppf;
    predictor = Predictor.create ();
    cache = Cache.create ~size_words:t.cache_size_words ~line_words:t.cache_line_words ();
    reg_ready = Hashtbl.create 256;
    issue_load = Hashtbl.create 4096;
    ring_tags = Array.make ring_initial_capacity min_int;
    ring_used = Array.make ring_initial_capacity 0;
    ring_mask = ring_initial_capacity - 1;
    ring_grows = 0;
    sigs = Hashtbl.create 64;
    ev_ins = Array.make ev_initial_capacity dummy_instr;
    ev_fired = Array.make ev_initial_capacity false;
    ev_addr = Array.make ev_initial_capacity (-1);
    ev_mask = Array.make ((ev_initial_capacity / 62) + 1) 0;
    ev_miss = Array.make ((ev_initial_capacity / 62) + 1) 0;
    ev_n = 0;
    ev_fired_n = 0;
    avail_c = Array.make 128 0;
    avail_p = Array.make 128 (-2);
    issue_buf = Array.make 128 0;
    issue_n = 0;
    delta_buf = Array.make 64 0;
    memo_entries = 0;
    memo_hits = 0;
    memo_misses = 0;
    sampled_skips = 0;
    sample_err = 0;
    prev_dispatch_end = 0;
    last_commit = 0;
    commit_ring = Array.make t.window_blocks 0;
    block_index = 0;
    redirect_at = 0;
    mispredictions = 0;
    instrs_fired = 0;
    instrs_fetched = 0;
    cur_block = -1;
    cur_events = [];
    cur_exit = None;
    started = false;
  }

(* ---- issue allocators --------------------------------------------------- *)

(* Legacy greedy issue-slot search from [ready] (TRIPS_NO_SIM_FAST):
   one hashtable entry per simulated cycle, never pruned. *)
let issue_at m ~ready =
  let rec find c =
    let used = Option.value ~default:0 (Hashtbl.find_opt m.issue_load c) in
    if used < m.t.issue_width then begin
      Hashtbl.replace m.issue_load c (used + 1);
      c
    end
    else find (c + 1)
  in
  find ready

(* Ring variants.  [horizon] is the retiring block's dispatch-end: every
   future probe starts at or after it, so smaller tags are dead.  On a
   live collision the ring is rebuilt at the smallest power of two
   exceeding the live span, which makes residues collision-free (any
   two live tags then differ by less than the capacity). *)
let ring_grow m ~horizon ~need =
  let old_tags = m.ring_tags and old_used = m.ring_used in
  let max_tag =
    Array.fold_left (fun acc t -> if t >= horizon then max acc t else acc) need old_tags
  in
  let span = max_tag - horizon + 1 in
  let cap = ref (2 * (m.ring_mask + 1)) in
  while !cap < span + 1 do
    cap := !cap * 2
  done;
  m.ring_tags <- Array.make !cap min_int;
  m.ring_used <- Array.make !cap 0;
  m.ring_mask <- !cap - 1;
  m.ring_grows <- m.ring_grows + 1;
  Array.iteri
    (fun i tag ->
      if tag >= horizon then begin
        let j = tag land m.ring_mask in
        m.ring_tags.(j) <- tag;
        m.ring_used.(j) <- old_used.(i)
      end)
    old_tags

let ring_load m c =
  let i = c land m.ring_mask in
  if m.ring_tags.(i) = c then m.ring_used.(i) else 0

let rec ring_issue m ~horizon c =
  let i = c land m.ring_mask in
  let tag = m.ring_tags.(i) in
  if tag = c then
    if m.ring_used.(i) < m.t.issue_width then begin
      m.ring_used.(i) <- m.ring_used.(i) + 1;
      c
    end
    else ring_issue m ~horizon (c + 1)
  else if tag < horizon then begin
    m.ring_tags.(i) <- c;
    m.ring_used.(i) <- 1;
    c
  end
  else begin
    ring_grow m ~horizon ~need:c;
    ring_issue m ~horizon c
  end

let rec ring_add m ~horizon c n =
  let i = c land m.ring_mask in
  let tag = m.ring_tags.(i) in
  if tag = c then m.ring_used.(i) <- m.ring_used.(i) + n
  else if tag < horizon then begin
    m.ring_tags.(i) <- c;
    m.ring_used.(i) <- n
  end
  else begin
    ring_grow m ~horizon ~need:c;
    ring_add m ~horizon c n
  end

(* Occupancy access independent of the allocator in use, so the memo
   works over both (the legacy hashtable never prunes, but occupancy is
   only ever read at or above the horizon, where both agree). *)
let occ_load m c =
  if m.fc.fc_fast then ring_load m c
  else Option.value ~default:0 (Hashtbl.find_opt m.issue_load c)

let occ_add m ~horizon c n =
  if m.fc.fc_fast then ring_add m ~horizon c n
  else Hashtbl.replace m.issue_load c (occ_load m c + n)

let issue_slot m ~horizon ~ready =
  if m.fc.fc_fast then ring_issue m ~horizon ready else issue_at m ~ready

(* ---- placement model ---------------------------------------------------- *)

(* Instructions are placed round-robin across the ALU grid in fetch
   order (the static-placement half of SPDI); operand latency between
   two instructions is the Manhattan distance between their ALUs, so
   dependence chains mapped far apart pay for the operand network, as
   on the real array.  Grid 0 charges a flat hop (optimized SPDI). *)
let hop_between t a b =
  let grid = max 0 t.spatial_grid in
  if grid = 0 then t.operand_hop
  else
    let cell_a = a mod (grid * grid) and cell_b = b mod (grid * grid) in
    let ax, ay = (cell_a mod grid, cell_a / grid) in
    let bx, by = (cell_b mod grid, cell_b / grid) in
    let manhattan = abs (ax - bx) + abs (ay - by) in
    t.operand_hop * max 1 manhattan

(* ---- legacy timing body (both hatches engaged) -------------------------- *)

(* The original per-instruction path, kept verbatim: per-operand double
   hashtable lookups, cache probes inline, hashtable issue allocation.
   Returns block-done and branch times plus a closure applying the
   register exports (which, in this formulation, needs the commit). *)
let retire_legacy m ~dispatch_end ~events =
  let t = m.t in
  let local_done : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* register -> (completion, producer slot index) *)
  let input_ready ~consumer_idx r =
    match Hashtbl.find_opt local_done r with
    | Some (c, producer_idx) -> c + hop_between t producer_idx consumer_idx
    | None ->
      let produced = Option.value ~default:0 (Hashtbl.find_opt m.reg_ready r) in
      max (dispatch_end + t.reg_read_latency) (produced + t.operand_hop)
  in
  let block_done = ref dispatch_end in
  List.iteri
    (fun idx ((i : Instr.t), fired, addr) ->
      if fired then begin
        m.instrs_fired <- m.instrs_fired + 1;
        let ready =
          List.fold_left
            (fun acc r -> max acc (input_ready ~consumer_idx:idx r))
            dispatch_end (Instr.uses i)
        in
        let issue = issue_at m ~ready in
        let latency =
          Latency.of_op i.Instr.op
          +
          match (i.Instr.op, addr) with
          | Instr.Load _, Some a ->
            if Cache.access m.cache ~addr:a then 0 else t.miss_penalty
          | Instr.Store _, Some a ->
            ignore (Cache.access m.cache ~addr:a);
            0
          | _ -> 0
        in
        let done_ = issue + latency in
        List.iter
          (fun d -> Hashtbl.replace local_done d (done_, idx))
          (Instr.defs i);
        if done_ > !block_done then block_done := done_
      end)
    events;
  (* branch resolution: the firing exit's guard producer (branches sit
     at the end of the mapped block) *)
  let n_instrs = List.length events in
  let branch_time =
    match m.cur_exit with
    | Some { Block.eguard = Some g; _ } ->
      input_ready ~consumer_idx:n_instrs g.Instr.greg
    | Some { Block.eguard = None; _ } | None -> dispatch_end
  in
  let export ~commit =
    (* export register writes for later blocks *)
    List.iter
      (fun ((i : Instr.t), fired, _) ->
        if fired then
          List.iter
            (fun d ->
              Hashtbl.replace m.reg_ready d
                (match Hashtbl.find_opt local_done d with
                | Some (c, _) -> c
                | None -> commit))
            (Instr.defs i))
      events
  in
  (!block_done, branch_time, export)

(* ---- fast timing body --------------------------------------------------- *)

(* Hot-path hashtable read without the [find_opt] option allocation. *)
let ht_find0 tbl k =
  match Hashtbl.find tbl k with v -> v | exception Not_found -> 0

let bit_set words idx = words.(idx / 62) land (1 lsl (idx mod 62)) <> 0

(* Per-signature static analysis, computed once: dense register
   renumbering, each fired instruction's use/def slots as arrays (no
   per-instance list allocation), and which registers the instance
   reads from outside — a use with no earlier *fired* def, in
   first-use order, including the firing exit's guard.  Determined by
   the signature (block, fired mask, guard). *)
let make_sig_info m ~guard_reg =
  let n = m.ev_n in
  let uses = Array.make n [||] in
  let defs = Array.make n [||] in
  let slot_of = Hashtbl.create 32 in
  let names = ref [] in
  let nregs = ref 0 in
  let slot r =
    match Hashtbl.find slot_of r with
    | s -> s
    | exception Not_found ->
      let s = !nregs in
      Hashtbl.add slot_of r s;
      names := r :: !names;
      incr nregs;
      s
  in
  let defined = Hashtbl.create 32 in
  let ext_set = Hashtbl.create 16 in
  let ext = ref [] in
  let ext_slots = ref [] in
  let note_ext r s =
    if (not (Hashtbl.mem defined r)) && not (Hashtbl.mem ext_set r) then begin
      Hashtbl.add ext_set r ();
      ext := r :: !ext;
      ext_slots := s :: !ext_slots
    end
  in
  for idx = 0 to n - 1 do
    if m.ev_fired.(idx) then begin
      let i = m.ev_ins.(idx) in
      let us = Instr.uses i and ds = Instr.defs i in
      uses.(idx) <-
        Array.of_list
          (List.map
             (fun r ->
               let s = slot r in
               note_ext r s;
               s)
             us);
      defs.(idx) <- Array.of_list (List.map slot ds);
      List.iter (fun d -> Hashtbl.replace defined d ()) ds
    end
  done;
  let guard_slot =
    if guard_reg >= 0 then begin
      let s = slot guard_reg in
      note_ext guard_reg s;
      s
    end
    else -1
  in
  {
    si_ext = Array.of_list (List.rev !ext);
    si_ext_slots = Array.of_list (List.rev !ext_slots);
    si_names = Array.of_list (List.rev !names);
    si_nregs = !nregs;
    si_guard_slot = guard_slot;
    si_uses = uses;
    si_defs = defs;
    si_entries = Hashtbl.create 8;
    si_seen = 0;
    si_tick = 0;
    si_skipped = 0;
  }

let apply_exports m ~dispatch_end (exports : (int * int) array) =
  Array.iter
    (fun (r, off) -> Hashtbl.replace m.reg_ready r (dispatch_end + off))
    exports

let push_issue m c =
  if m.issue_n = Array.length m.issue_buf then begin
    let bigger = Array.make (2 * m.issue_n) 0 in
    Array.blit m.issue_buf 0 bigger 0 m.issue_n;
    m.issue_buf <- bigger
  end;
  m.issue_buf.(m.issue_n) <- c;
  m.issue_n <- m.issue_n + 1

(* Full (measured) timing computation with batched wakeup; returns the
   recorded entry.  [deltas] are the external readiness offsets already
   gathered for the memo key, so the availability table is seeded from
   them — one lookup per external register per block, not per use. *)
let fast_compute m ~dispatch_end ~(si : sig_info) ~deltas =
  let t = m.t in
  let horizon = dispatch_end in
  let n_instrs = m.ev_n in
  let nregs = si.si_nregs in
  if Array.length m.avail_c < nregs then begin
    m.avail_c <- Array.make (2 * nregs) 0;
    m.avail_p <- Array.make (2 * nregs) (-2)
  end;
  let ac = m.avail_c and ap = m.avail_p in
  Array.fill ap 0 nregs (-2);
  Array.iteri
    (fun j s ->
      ac.(s) <- dispatch_end + deltas.(j);
      ap.(s) <- -1)
    si.si_ext_slots;
  let input_ready ~consumer_idx s =
    let p = ap.(s) in
    if p = -1 then ac.(s)
    else if p >= 0 then ac.(s) + hop_between t p consumer_idx
    else
      (* unreachable by construction of [si_ext]; kept total *)
      max (dispatch_end + t.reg_read_latency)
        (ht_find0 m.reg_ready si.si_names.(s) + t.operand_hop)
  in
  let block_done = ref dispatch_end in
  m.issue_n <- 0;
  let max_issue = ref (dispatch_end - 1) in
  for idx = 0 to n_instrs - 1 do
    if m.ev_fired.(idx) then begin
      let ready = ref dispatch_end in
      let us = si.si_uses.(idx) in
      for k = 0 to Array.length us - 1 do
        let r = input_ready ~consumer_idx:idx us.(k) in
        if r > !ready then ready := r
      done;
      let issue = issue_slot m ~horizon ~ready:!ready in
      push_issue m issue;
      if issue > !max_issue then max_issue := issue;
      let latency =
        Latency.of_op m.ev_ins.(idx).Instr.op
        + (if bit_set m.ev_miss idx then t.miss_penalty else 0)
      in
      let done_ = issue + latency in
      let ds = si.si_defs.(idx) in
      for k = 0 to Array.length ds - 1 do
        let d = ds.(k) in
        ac.(d) <- done_;
        ap.(d) <- idx
      done;
      if done_ > !block_done then block_done := done_
    end
  done;
  let branch_time =
    if si.si_guard_slot >= 0 then
      input_ready ~consumer_idx:n_instrs si.si_guard_slot
    else dispatch_end
  in
  (* exports: every slot a fired def finally wrote (producer >= 0), in
     slot order — order is irrelevant, each register appears once *)
  let nexp = ref 0 in
  for s = 0 to nregs - 1 do
    if ap.(s) >= 0 then incr nexp
  done;
  let exports = Array.make !nexp (0, 0) in
  let k = ref 0 in
  for s = 0 to nregs - 1 do
    if ap.(s) >= 0 then begin
      exports.(!k) <- (si.si_names.(s), ac.(s) - dispatch_end);
      incr k
    end
  done;
  apply_exports m ~dispatch_end exports;
  let span = if m.issue_n = 0 then 0 else !max_issue - dispatch_end + 1 in
  let full = span <= memo_max_span in
  let iss = Array.make (if full then span else 0) 0 in
  if full then
    for k = 0 to m.issue_n - 1 do
      let c = m.issue_buf.(k) - dispatch_end in
      iss.(c) <- iss.(c) + 1
    done;
  let pre =
    if full then
      Array.init span (fun k -> occ_load m (dispatch_end + k) - iss.(k))
    else [||]
  in
  let entry =
    {
      e_span = (if full then span else 0);
      e_pre = pre;
      e_iss = iss;
      e_done_off = !block_done - dispatch_end;
      e_branch_off = branch_time - dispatch_end;
      e_exports = exports;
    }
  in
  (entry, full)

(* The structured body: signature lookup over the event buffers the
   hooks filled, memo replay or full computation, and — in sampled
   mode — key-aware extrapolation.  Returns block-done and branch
   times; exports are applied inside (they never need the commit — a
   fired def's completion is always recorded). *)
let retire_fast m ~dispatch_end =
  let t = m.t in
  let horizon = dispatch_end in
  let words = max 1 ((m.ev_n + 61) / 62) in
  m.instrs_fired <- m.instrs_fired + m.ev_fired_n;
  let guard_reg =
    match m.cur_exit with
    | Some { Block.eguard = Some g; _ } -> g.Instr.greg
    | Some { Block.eguard = None; _ } | None -> -1
  in
  (* signature lookup: scan this block's signatures comparing guard and
     mask words against the live buffers — a hit allocates nothing, and
     the per-block lists stay short (one cell per distinct predication
     outcome) *)
  let mask_eq stored =
    let rec go w = w >= words || (stored.(w) = m.ev_mask.(w) && go (w + 1)) in
    go 0
  in
  let cells =
    match Hashtbl.find m.sigs m.cur_block with
    | l -> l
    | exception Not_found -> []
  in
  let si =
    let rec scan = function
      | c :: rest ->
        if c.sc_guard = guard_reg && mask_eq c.sc_mask then c.sc_info
        else scan rest
      | [] ->
        let si = make_sig_info m ~guard_reg in
        Hashtbl.replace m.sigs m.cur_block
          ({ sc_guard = guard_reg;
             sc_mask = Array.sub m.ev_mask 0 words;
             sc_info = si }
          :: cells);
        si
    in
    scan cells
  in
  si.si_seen <- si.si_seen + 1;
  (* memo-key deltas into the reusable scratch buffer, folding the
     bucket hash along the way; key arrays are only materialized when a
     new entry is stored *)
  let ext_n = Array.length si.si_ext in
  if Array.length m.delta_buf < ext_n then
    m.delta_buf <- Array.make (2 * ext_n) 0;
  let db = m.delta_buf in
  let h = ref 0 in
  for j = 0 to ext_n - 1 do
    let d =
      max t.reg_read_latency
        (ht_find0 m.reg_ready si.si_ext.(j) + t.operand_hop - dispatch_end)
    in
    db.(j) <- d;
    h := (!h * 31) + d
  done;
  for w = 0 to words - 1 do
    h := (!h * 31) + m.ev_miss.(w)
  done;
  let h = !h land max_int in
  let key_eq (k : inst_key) =
    Array.length k.ik_deltas = ext_n
    && (let rec go j = j >= ext_n || (k.ik_deltas.(j) = db.(j) && go (j + 1)) in
        go 0)
    && (let rec go w =
          w >= words || (k.ik_miss.(w) = m.ev_miss.(w) && go (w + 1))
        in
        go 0)
  in
  let bucket =
    if m.fc.fc_memo then
      match Hashtbl.find si.si_entries h with
      | l -> l
      | exception Not_found -> []
    else []
  in
  let cached =
    let rec scan = function
      | ((k, _) as p) :: rest -> if key_eq k then Some p else scan rest
      | [] -> None
    in
    scan bucket
  in
  (* Sampled mode: once a signature has converged, only every Nth
     instance is re-timed; the rest replay the entry recorded for their
     *own* instance key without verifying or updating issue occupancy —
     latencies and dependences stay exact, only cross-block issue
     contention is extrapolated.  A key never seen is always measured. *)
  let sampling = m.fc.fc_sample > 1 in
  let skip =
    sampling && cached <> None && si.si_seen > sample_converge
    && si.si_tick mod m.fc.fc_sample <> 0
  in
  si.si_tick <- si.si_tick + 1;
  match cached with
  | Some (_, e) when skip ->
    si.si_skipped <- si.si_skipped + 1;
    m.sampled_skips <- m.sampled_skips + 1;
    apply_exports m ~dispatch_end e.e_exports;
    (dispatch_end + e.e_done_off, dispatch_end + e.e_branch_off)
  | _ ->
    let commit_of ~done_ ~branch =
      max (max done_ branch) m.last_commit + t.commit_overhead
    in
    (* what a skip would have charged this instance, for the drift bound *)
    let predicted =
      match cached with
      | Some (_, e) when sampling ->
        Some
          (commit_of ~done_:(dispatch_end + e.e_done_off)
             ~branch:(dispatch_end + e.e_branch_off))
      | _ -> None
    in
    let replayed =
      match cached with
      | Some (_, e) ->
        (* bit-exact only if the pre-existing occupancy over the
           recorded span matches the recording *)
        let ok = ref true in
        (try
           for k = 0 to e.e_span - 1 do
             if occ_load m (dispatch_end + k) <> e.e_pre.(k) then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        if !ok then Some e else None
      | None -> None
    in
    let entry =
      match replayed with
      | Some e ->
        m.memo_hits <- m.memo_hits + 1;
        for k = 0 to e.e_span - 1 do
          if e.e_iss.(k) > 0 then occ_add m ~horizon (dispatch_end + k) e.e_iss.(k)
        done;
        apply_exports m ~dispatch_end e.e_exports;
        e
      | None ->
        m.memo_misses <- m.memo_misses + 1;
        let entry, full = fast_compute m ~dispatch_end ~si ~deltas:db in
        if full && m.memo_entries < memo_max_entries then begin
          let ik =
            {
              ik_deltas = Array.sub db 0 ext_n;
              ik_miss = Array.sub m.ev_miss 0 words;
            }
          in
          match cached with
          | Some (k0, _) ->
            (* stale recording under this key (occupancy drifted):
               swap it out in place, the key population is unchanged *)
            Hashtbl.replace si.si_entries h
              ((ik, entry) :: List.filter (fun (k, _) -> k != k0) bucket)
          | None ->
            Hashtbl.replace si.si_entries h ((ik, entry) :: bucket);
            m.memo_entries <- m.memo_entries + 1
        end;
        entry
    in
    let block_done = dispatch_end + entry.e_done_off in
    let branch_time = dispatch_end + entry.e_branch_off in
    (match predicted with
    | Some pred when si.si_skipped > 0 ->
      let real = commit_of ~done_:block_done ~branch:branch_time in
      m.sample_err <- m.sample_err + (abs (real - pred) * si.si_skipped);
      si.si_skipped <- 0
    | Some _ -> si.si_skipped <- 0
    | None -> ());
    (block_done, branch_time)

(* ---- event intake ------------------------------------------------------- *)

(* Fast-path instruction hook: append to the flat buffers, fold the
   fired bitmask in, and resolve cache accesses right here — the hooks
   fire in program order, exactly the order the legacy timing loop
   probes the cache in, and cache state never feeds back into
   functional execution, so probing early is byte-identical. *)
let ev_push m i ~fired ~addr =
  let idx = m.ev_n in
  if idx = Array.length m.ev_ins then begin
    let cap = 2 * idx in
    let ins = Array.make cap dummy_instr in
    let frd = Array.make cap false in
    let adr = Array.make cap (-1) in
    let msk = Array.make ((cap / 62) + 1) 0 in
    let mis = Array.make ((cap / 62) + 1) 0 in
    Array.blit m.ev_ins 0 ins 0 idx;
    Array.blit m.ev_fired 0 frd 0 idx;
    Array.blit m.ev_addr 0 adr 0 idx;
    Array.blit m.ev_mask 0 msk 0 (Array.length m.ev_mask);
    Array.blit m.ev_miss 0 mis 0 (Array.length m.ev_miss);
    m.ev_ins <- ins;
    m.ev_fired <- frd;
    m.ev_addr <- adr;
    m.ev_mask <- msk;
    m.ev_miss <- mis
  end;
  m.ev_ins.(idx) <- i;
  m.ev_fired.(idx) <- fired;
  m.ev_addr.(idx) <- (match addr with Some a -> a | None -> -1);
  m.ev_n <- idx + 1;
  if fired then begin
    m.ev_fired_n <- m.ev_fired_n + 1;
    m.ev_mask.(idx / 62) <- m.ev_mask.(idx / 62) lor (1 lsl (idx mod 62));
    match (i.Instr.op, addr) with
    | Instr.Load _, Some a ->
      if not (Cache.access m.cache ~addr:a) then
        m.ev_miss.(idx / 62) <- m.ev_miss.(idx / 62) lor (1 lsl (idx mod 62))
    | Instr.Store _, Some a -> ignore (Cache.access m.cache ~addr:a)
    | _ -> ()
  end

let ev_reset m =
  let words = max 1 ((m.ev_n + 61) / 62) in
  Array.fill m.ev_mask 0 words 0;
  Array.fill m.ev_miss 0 words 0;
  m.ev_n <- 0;
  m.ev_fired_n <- 0

(* ---- retire -------------------------------------------------------------- *)

(* Retire the accumulated block instance: compute its dispatch, issue and
   commit times, update predictor/window bookkeeping.  [next] is the id of
   the actually-following block, or None at program end.  [attribution]
   receives the instance's fetch/fire counts per lineage class, its
   share of total cycles (the commit-time delta, which partitions the
   run total exactly) and any flush its branch resolution caused. *)
let retire ?attribution m ~next =
  if m.started then begin
    (* watchdog: the retire loop runs once per dynamic block instance;
       polling here bounds the timing model independently of the
       functional driver (whose own poll covers the fetch side) *)
    Trips_obs.Watchdog.check ();
    let t = m.t in
    let fast_body = m.fc.fc_fast || m.fc.fc_memo || m.fc.fc_sample > 1 in
    let events = if fast_body then [] else List.rev m.cur_events in
    let n_instrs = if fast_body then m.ev_n else List.length events in
    m.instrs_fetched <- m.instrs_fetched + n_instrs;
    (* window: the (window-1)-blocks-ago commit gates dispatch *)
    let slot = m.block_index mod t.window_blocks in
    let window_gate = m.commit_ring.(slot) in
    let dispatch_start =
      max (max m.prev_dispatch_end m.redirect_at) window_gate
    in
    let dispatch_end =
      dispatch_start + t.block_overhead
      + ((n_instrs + t.fetch_bandwidth - 1) / t.fetch_bandwidth)
    in
    let block_done, branch_time, export =
      if fast_body then begin
        let done_, branch = retire_fast m ~dispatch_end in
        (done_, branch, fun ~commit:_ -> ())
      end
      else retire_legacy m ~dispatch_end ~events
    in
    let commit =
      max (max block_done branch_time) m.last_commit + t.commit_overhead
    in
    export ~commit;
    if !(m.trace) > 0 then begin
      decr m.trace;
      Fmt.pf m.trace_ppf
        "[trace] b%d n=%d dispatch=%d..%d done=%d branch=%d commit=%d@."
        m.cur_block n_instrs dispatch_start dispatch_end block_done
        branch_time commit
    end;
    (match attribution with
    | Some a ->
      Attribution.count_execution a ~block:m.cur_block;
      if fast_body then
        for idx = 0 to m.ev_n - 1 do
          Attribution.count_instr a ~block:m.cur_block m.ev_ins.(idx)
            ~fired:m.ev_fired.(idx)
        done
      else
        List.iter
          (fun ((i : Instr.t), fired, _) ->
            Attribution.count_instr a ~block:m.cur_block i ~fired)
          events;
      Attribution.add_cycles a ~block:m.cur_block (commit - m.last_commit)
    | None -> ());
    m.commit_ring.(slot) <- commit;
    m.last_commit <- commit;
    m.prev_dispatch_end <- dispatch_end;
    m.block_index <- m.block_index + 1;
    (* next-block prediction.  [Predictor.update]'s verdict is the one
       source of truth: it is exactly "the stored target equalled the
       actual successor", which is what a separate predict-then-compare
       would recompute — so flushes always reconcile with the
       predictor's own lookup/hit counters. *)
    (match next with
    | Some actual ->
      let correct = Predictor.update m.predictor ~block:m.cur_block ~actual in
      if not correct then begin
        m.mispredictions <- m.mispredictions + 1;
        m.redirect_at <- branch_time + t.flush_penalty;
        match attribution with
        | Some a -> Attribution.add_flush a ~block:m.cur_block
        | None -> ()
      end
    | None -> ())
  end

(** Run [cfg] under the timing model.  Functionally identical to
    [Func_sim.run]; additionally reports cycles and microarchitectural
    statistics. *)
let run ?(timing = default_timing) ?(trace = 0) ?trace_ppf ?(sample = 0)
    ?attribution ?fuel ?strict_exits ?registers ~memory cfg : result =
  let m = make_machine ~trace ?trace_ppf ~sample timing in
  let fast_body = m.fc.fc_fast || m.fc.fc_memo || m.fc.fc_sample > 1 in
  let on_instr =
    if fast_body then fun i ~fired ~addr -> ev_push m i ~fired ~addr
    else fun i ~fired ~addr -> m.cur_events <- (i, fired, addr) :: m.cur_events
  in
  let hooks =
    {
      Func_sim.on_block =
        (fun id ->
          retire ?attribution m ~next:(Some id);
          m.started <- true;
          m.cur_block <- id;
          m.cur_events <- [];
          ev_reset m;
          m.cur_exit <- None);
      on_instr;
      on_exit = (fun e -> m.cur_exit <- Some e);
    }
  in
  let fr = Func_sim.run ?fuel ?strict_exits ~hooks ?registers ~memory cfg in
  retire ?attribution m ~next:None;
  Trips_obs.Metrics.incr ~by:m.last_commit "sim.cycle.cycles";
  Trips_obs.Metrics.incr ~by:fr.Func_sim.blocks_executed "sim.cycle.commits";
  Trips_obs.Metrics.incr ~by:m.instrs_fetched "sim.cycle.fetched";
  Trips_obs.Metrics.incr ~by:m.instrs_fired "sim.cycle.fired";
  Trips_obs.Metrics.incr ~by:m.mispredictions "sim.cycle.flushes";
  Trips_obs.Metrics.incr ~by:m.memo_hits "sim.cycle.memo.hits";
  Trips_obs.Metrics.incr ~by:m.memo_misses "sim.cycle.memo.misses";
  Trips_obs.Metrics.incr ~by:m.ring_grows "sim.cycle.ring.grows";
  if m.fc.fc_fast then
    Trips_obs.Metrics.incr ~by:(m.ring_mask + 1) "sim.cycle.ring.capacity";
  Trips_obs.Metrics.incr ~by:m.sampled_skips "sim.cycle.sample.skips";
  let lookups, hits = Predictor.counters m.predictor in
  Trips_obs.Metrics.incr ~by:lookups "sim.predictor.lookups";
  Trips_obs.Metrics.incr ~by:hits "sim.predictor.hits";
  let accesses, misses = Cache.counters m.cache in
  Trips_obs.Metrics.incr ~by:accesses "sim.dcache.accesses";
  Trips_obs.Metrics.incr ~by:misses "sim.dcache.misses";
  {
    cycles = m.last_commit;
    blocks = fr.Func_sim.blocks_executed;
    instrs_fired = m.instrs_fired;
    instrs_fetched = m.instrs_fetched;
    mispredictions = m.mispredictions;
    predictor_accuracy = Predictor.accuracy m.predictor;
    cache_miss_rate = Cache.miss_rate m.cache;
    sample_error_bound =
      (if m.fc.fc_sample > 1 then
         Some (float_of_int m.sample_err /. float_of_int (max 1 m.last_commit))
       else None);
    ret = fr.Func_sim.ret;
    checksum = fr.Func_sim.checksum;
  }
