(* Trace-driven TRIPS cycle-level timing model.

   The functional simulator supplies, per dynamic block instance, which
   instructions fired, the memory addresses they touched and the exit that
   fired; this module converts that trace into cycles online (no trace is
   stored).  The model charges the costs the paper's analysis rests on:

   - per-block *mapping overhead*: a fixed dispatch cost plus fetch
     bandwidth, amortized better by fuller blocks (the [overhead] term of
     the Section 7.3 cost equation);
   - *dataflow issue*: an instruction becomes ready when its operands —
     including its predicate — are produced, plus an operand-network hop;
     issue contends for the 16-wide execution resources;
   - *dataflow predication*: nullified (guard-false) instructions never
     issue; guarded instructions wait for their guard, which is exactly
     why tail-duplicating an induction-variable update serializes an
     otherwise parallel loop (the bzip2_3 effect);
   - *speculative next-block fetch*: up to 8 blocks in flight, in-order
     commit, and a flush penalty paid from branch-resolution time on a
     next-block misprediction;
   - *block commit*: a block commits once all its outputs (register
     writes, stores, the branch) are produced — a short untaken path
     never waits for a long one, the key EDGE/VLIW contrast of Section 5;
   - a small direct-mapped L1 with per-access hit/miss latency.

   Cross-block dependences flow through [reg_ready]: a consumer of a
   register written by an earlier block waits for the producing write,
   which keeps loop-carried dependence chains serial no matter how many
   blocks are in flight. *)

open Trips_ir

type timing = {
  fetch_bandwidth : int;  (* instructions mapped per cycle *)
  block_overhead : int;  (* fixed per-block dispatch/map cost *)
  issue_width : int;
  operand_hop : int;  (* operand-network latency per grid hop *)
  spatial_grid : int;
      (* side of the ALU grid for the *unoptimized-placement* mode:
         instructions are placed round-robin and producer->consumer
         latency is operand_hop * Manhattan distance.  0 (the default)
         charges a flat operand_hop per edge, which approximates a
         well-optimized SPDI placement; the grid mode exists to quantify
         what placement quality is worth. *)
  reg_read_latency : int;  (* block input availability after dispatch *)
  miss_penalty : int;  (* added to a load's latency on L1 miss *)
  flush_penalty : int;  (* misprediction redirect cost *)
  commit_overhead : int;
  window_blocks : int;
  cache_size_words : int;
  cache_line_words : int;
}

let default_timing =
  {
    fetch_bandwidth = Machine.issue_width;
    block_overhead = 6;
    issue_width = Machine.issue_width;
    operand_hop = 1;
    spatial_grid = 0;
    reg_read_latency = 2;
    miss_penalty = 12;
    flush_penalty = 12;
    commit_overhead = 2;
    window_blocks = Machine.max_blocks_in_flight;
    cache_size_words = 2048;
    cache_line_words = 8;
  }

type result = {
  cycles : int;
  blocks : int;
  instrs_fired : int;
  instrs_fetched : int;
  mispredictions : int;
  predictor_accuracy : float;
  cache_miss_rate : float;
  ret : int option;
  checksum : int;
}

(* Mutable per-run machine state. *)
type machine = {
  t : timing;
  trace : int ref;  (* block instances still to trace to stderr *)
  predictor : Predictor.t;
  cache : Cache.t;
  reg_ready : (int, int) Hashtbl.t;  (* register -> producer completion *)
  issue_load : (int, int) Hashtbl.t;  (* cycle -> instructions issued *)
  mutable prev_dispatch_end : int;
  mutable last_commit : int;
  commit_ring : int array;  (* commit times of the last [window] blocks *)
  mutable block_index : int;
  mutable redirect_at : int;  (* earliest next fetch after a misprediction *)
  mutable mispredictions : int;
  mutable instrs_fired : int;
  mutable instrs_fetched : int;
  (* current block instance being accumulated *)
  mutable cur_block : int;
  mutable cur_events : (Instr.t * bool * int option) list;  (* reversed *)
  mutable cur_exit : Block.exit_ option;
  mutable started : bool;
}

let make_machine ?(trace = 0) t =
  {
    t;
    trace = ref trace;
    predictor = Predictor.create ();
    cache = Cache.create ~size_words:t.cache_size_words ~line_words:t.cache_line_words ();
    reg_ready = Hashtbl.create 256;
    issue_load = Hashtbl.create 4096;
    prev_dispatch_end = 0;
    last_commit = 0;
    commit_ring = Array.make t.window_blocks 0;
    block_index = 0;
    redirect_at = 0;
    mispredictions = 0;
    instrs_fired = 0;
    instrs_fetched = 0;
    cur_block = -1;
    cur_events = [];
    cur_exit = None;
    started = false;
  }

(* Greedy issue-slot search from [ready]. *)
let issue_at m ~ready =
  let rec find c =
    let used = Option.value ~default:0 (Hashtbl.find_opt m.issue_load c) in
    if used < m.t.issue_width then begin
      Hashtbl.replace m.issue_load c (used + 1);
      c
    end
    else find (c + 1)
  in
  find ready

(* Retire the accumulated block instance: compute its dispatch, issue and
   commit times, update predictor/window bookkeeping.  [next] is the id of
   the actually-following block, or None at program end.  [attribution]
   receives the instance's fetch/fire counts per lineage class, its
   share of total cycles (the commit-time delta, which partitions the
   run total exactly) and any flush its branch resolution caused. *)
let retire ?attribution m ~next =
  if m.started then begin
    (* watchdog: the retire loop runs once per dynamic block instance;
       polling here bounds the timing model independently of the
       functional driver (whose own poll covers the fetch side) *)
    Trips_obs.Watchdog.check ();
    let t = m.t in
    let events = List.rev m.cur_events in
    let n_instrs = List.length events in
    m.instrs_fetched <- m.instrs_fetched + n_instrs;
    (* window: the (window-1)-blocks-ago commit gates dispatch *)
    let slot = m.block_index mod t.window_blocks in
    let window_gate = m.commit_ring.(slot) in
    let dispatch_start =
      max (max m.prev_dispatch_end m.redirect_at) window_gate
    in
    let dispatch_end =
      dispatch_start + t.block_overhead
      + ((n_instrs + t.fetch_bandwidth - 1) / t.fetch_bandwidth)
    in
    (* dataflow issue.  Instructions are placed round-robin across the
       ALU grid in fetch order (the static-placement half of SPDI);
       operand latency between two instructions is the Manhattan distance
       between their ALUs, so dependence chains mapped far apart pay for
       the operand network, as on the real array. *)
    let grid = max 0 t.spatial_grid in
    let slot_of idx =
      if grid = 0 then (0, 0)
      else
        let cell = idx mod (grid * grid) in
        (cell mod grid, cell / grid)
    in
    let hop_between a b =
      if grid = 0 then t.operand_hop
      else
        let ax, ay = slot_of a and bx, by = slot_of b in
        let manhattan = abs (ax - bx) + abs (ay - by) in
        t.operand_hop * max 1 manhattan
    in
    let local_done : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
    (* register -> (completion, producer slot index) *)
    let input_ready ~consumer_idx r =
      match Hashtbl.find_opt local_done r with
      | Some (c, producer_idx) -> c + hop_between producer_idx consumer_idx
      | None ->
        let produced =
          Option.value ~default:0 (Hashtbl.find_opt m.reg_ready r)
        in
        max (dispatch_end + t.reg_read_latency) (produced + t.operand_hop)
    in
    let block_done = ref dispatch_end in
    List.iteri
      (fun idx ((i : Instr.t), fired, addr) ->
        if fired then begin
          m.instrs_fired <- m.instrs_fired + 1;
          let ready =
            List.fold_left
              (fun acc r -> max acc (input_ready ~consumer_idx:idx r))
              dispatch_end (Instr.uses i)
          in
          let issue = issue_at m ~ready in
          let latency =
            Latency.of_op i.Instr.op
            +
            match (i.Instr.op, addr) with
            | Instr.Load _, Some a ->
              if Cache.access m.cache ~addr:a then 0 else t.miss_penalty
            | Instr.Store _, Some a ->
              ignore (Cache.access m.cache ~addr:a);
              0
            | _ -> 0
          in
          let done_ = issue + latency in
          List.iter
            (fun d -> Hashtbl.replace local_done d (done_, idx))
            (Instr.defs i);
          if done_ > !block_done then block_done := done_
        end)
      events;
    (* branch resolution: the firing exit's guard producer (branches sit
       at the end of the mapped block) *)
    let branch_time =
      match m.cur_exit with
      | Some { Block.eguard = Some g; _ } ->
        input_ready ~consumer_idx:n_instrs g.Instr.greg
      | Some { Block.eguard = None; _ } | None -> dispatch_end
    in
    let commit =
      max (max !block_done branch_time) m.last_commit + t.commit_overhead
    in
    (* export register writes for later blocks *)
    List.iter
      (fun ((i : Instr.t), fired, _) ->
        if fired then
          List.iter
            (fun d ->
              Hashtbl.replace m.reg_ready d
                (match Hashtbl.find_opt local_done d with
                | Some (c, _) -> c
                | None -> commit))
            (Instr.defs i))
      events;
    if !(m.trace) > 0 then begin
      decr m.trace;
      Fmt.epr
        "[trace] b%d n=%d dispatch=%d..%d done=%d branch=%d commit=%d@."
        m.cur_block n_instrs dispatch_start dispatch_end !block_done
        branch_time commit
    end;
    (match attribution with
    | Some a ->
      Attribution.count_execution a ~block:m.cur_block;
      List.iter
        (fun ((i : Instr.t), fired, _) ->
          Attribution.count_instr a ~block:m.cur_block i ~fired)
        events;
      Attribution.add_cycles a ~block:m.cur_block (commit - m.last_commit)
    | None -> ());
    m.commit_ring.(slot) <- commit;
    m.last_commit <- commit;
    m.prev_dispatch_end <- dispatch_end;
    m.block_index <- m.block_index + 1;
    (* next-block prediction *)
    (match next with
    | Some actual ->
      let predicted = Predictor.predict m.predictor ~block:m.cur_block in
      let correct = Predictor.update m.predictor ~block:m.cur_block ~actual in
      let was_hit = correct && predicted = Some actual in
      if not was_hit then begin
        m.mispredictions <- m.mispredictions + 1;
        m.redirect_at <- branch_time + t.flush_penalty;
        match attribution with
        | Some a -> Attribution.add_flush a ~block:m.cur_block
        | None -> ()
      end
    | None -> ())
  end

(** Run [cfg] under the timing model.  Functionally identical to
    [Func_sim.run]; additionally reports cycles and microarchitectural
    statistics. *)
let run ?(timing = default_timing) ?(trace = 0) ?attribution ?fuel
    ?strict_exits ?registers ~memory cfg : result =
  let m = make_machine ~trace timing in
  let hooks =
    {
      Func_sim.on_block =
        (fun id ->
          retire ?attribution m ~next:(Some id);
          m.started <- true;
          m.cur_block <- id;
          m.cur_events <- [];
          m.cur_exit <- None);
      on_instr =
        (fun i ~fired ~addr -> m.cur_events <- (i, fired, addr) :: m.cur_events);
      on_exit = (fun e -> m.cur_exit <- Some e);
    }
  in
  let fr = Func_sim.run ?fuel ?strict_exits ~hooks ?registers ~memory cfg in
  retire ?attribution m ~next:None;
  Trips_obs.Metrics.incr ~by:m.last_commit "sim.cycle.cycles";
  Trips_obs.Metrics.incr ~by:fr.Func_sim.blocks_executed "sim.cycle.commits";
  Trips_obs.Metrics.incr ~by:m.instrs_fetched "sim.cycle.fetched";
  Trips_obs.Metrics.incr ~by:m.instrs_fired "sim.cycle.fired";
  Trips_obs.Metrics.incr ~by:m.mispredictions "sim.cycle.flushes";
  let lookups, hits = Predictor.counters m.predictor in
  Trips_obs.Metrics.incr ~by:lookups "sim.predictor.lookups";
  Trips_obs.Metrics.incr ~by:hits "sim.predictor.hits";
  let accesses, misses = Cache.counters m.cache in
  Trips_obs.Metrics.incr ~by:accesses "sim.dcache.accesses";
  Trips_obs.Metrics.incr ~by:misses "sim.dcache.misses";
  {
    cycles = m.last_commit;
    blocks = fr.Func_sim.blocks_executed;
    instrs_fired = m.instrs_fired;
    instrs_fetched = m.instrs_fetched;
    mispredictions = m.mispredictions;
    predictor_accuracy = Predictor.accuracy m.predictor;
    cache_miss_rate = Cache.miss_rate m.cache;
    ret = fr.Func_sim.ret;
    checksum = fr.Func_sim.checksum;
  }
