(** Next-block predictor.

    TRIPS fetches speculatively along a predicted block sequence; a wrong
    prediction flushes the speculative blocks.  A two-level predictor
    indexed by the current block and a short history of recent successor
    choices, with per-entry hysteresis (the stored target only changes
    after two consecutive misses), keeps loop-exit behaviour realistic.
    Deterministic. *)

type t

val create : ?history_bits:int -> unit -> t
(** [history_bits = 0] gives a direct-mapped, history-free table. *)

val predict : t -> block:int -> int option
(** [None] when no information exists yet. *)

val update : t -> block:int -> actual:int -> bool
(** Record the actual successor; returns whether the prediction was
    correct. *)

val counters : t -> int * int
(** [(lookups, hits)] so far. *)

val accuracy : t -> float
