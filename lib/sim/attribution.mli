(** Runtime attribution of simulated work back to lineage classes.

    A collector accumulates, per static block, how many dynamic
    instances executed, how many instruction slots were fetched vs
    actually fired (predicated-off slots are the difference), the
    block's share of total cycles, flushes it caused, and a breakdown of
    fetched/fired slots by {!Trips_ir.Lineage} class.  Every fetch slot
    lands in exactly one class, so per-class counts partition the fetch
    total; {!Cycle_sim} bills every cycle to exactly one block, so
    per-block cycles partition the run total. *)

open Trips_ir

type t

val create : unit -> t

val count_execution : t -> block:int -> unit
val count_instr : t -> block:int -> Instr.t -> fired:bool -> unit
val add_cycles : t -> block:int -> int -> unit
val add_flush : t -> block:int -> unit

val hooks : t -> Func_sim.hooks
(** Feed the collector from a plain {!Func_sim} run (functional counts
    only; cycles and flushes need {!Cycle_sim}'s timing model). *)

type row = {
  r_block : int;
  r_execs : int;  (** dynamic block instances *)
  r_fetched : int;  (** dynamic instruction slots mapped *)
  r_fired : int;  (** slots that actually executed *)
  r_cycles : int;  (** share of total cycles billed to this block *)
  r_flushes : int;  (** mispredictions resolved by this block *)
  r_classes : (string * int * int) list;
      (** [(class, fetched, fired)], sorted by class name *)
}

val rows : t -> row list
(** Sorted by block id; deterministic for a deterministic run. *)
