(* telemetry_check — gate for the request-scoped telemetry layer.

   Boots an in-process daemon on a private socket and drives a fixed,
   fully deterministic request sequence (two sieve compiles so the
   output store hits, one matrix_1, one chaos-poisoned sieve so exactly
   one request crashes), then asserts:

   - the Prometheus exposition matches the committed golden byte for
     byte after masking volatile fields (every float renders as
     "d.dddddd", so one regex rule separates wall-clock values from the
     structural integers: request counts, window counts, store sizes);
   - a served compile is byte-identical to the one-shot pipeline while
     telemetry is collecting — the instrumentation may not change
     output bytes;
   - the first request's trace replays from the daemon ring and is
     well-formed (every span closed, parented, inside the request
     bounds) with the expected frame spans;
   - under TRIPS_NO_REQ_TELEMETRY a served compile is still
     byte-identical to the one-shot pipeline and the rolling window
     records nothing.

   [--write-golden] regenerates test/golden/telemetry_prom.txt instead
   of comparing.  Exit 0 on success, 1 with a message on the first
   violated check. *)

module C = Trips_serve.Client
module P = Trips_serve.Protocol
module S = Trips_serve.Server
module Telemetry = Trips_obs.Telemetry

let golden_path = "test/golden/telemetry_prom.txt"

let fail fmt =
  Fmt.kstr
    (fun m ->
      Fmt.epr "telemetry-check: FAIL: %s@." m;
      exit 1)
    fmt

let compile ?chaos name =
  P.Compile
    {
      P.cs_workload = name;
      cs_ordering = "iupo-merged";
      cs_policy = "bf";
      cs_backend = true;
      cs_verify = false;
      cs_deadline_s = None;
      cs_chaos_seed = chaos;
    }

let oneshot name =
  match Trips_workloads.Micro.by_name name with
  | None -> fail "workload %s missing" name
  | Some w -> (
    match
      Trips_serve.Worker.compile_report ~ordering:Chf.Phases.Iupo_merged
        ~config:Chf.Policy.edge_default ~backend:true ~verify:false w
    with
    | Error m -> fail "one-shot %s failed: %s" name m
    | Ok (_, text) -> text)

(* Floats are wall-clock, integers are structural: mask exactly the
   float-shaped tokens (Expo renders every float as "%.6f"). *)
let mask text =
  Re.replace_string
    (Re.compile (Re.Perl.re "-?[0-9]+\\.[0-9]+"))
    ~by:"X" text

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let () =
  let write_golden = Array.exists (( = ) "--write-golden") Sys.argv in
  Unix.putenv Telemetry.hatch "";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "chfc-telemetry-check.sock"
  in
  let srv = S.start ~workers:2 ~queue_depth:4 ~quiet:true ~socket () in
  let rpc req = C.with_conn ~socket (fun c -> C.rpc c req) in
  let rpc_traced req = C.with_conn ~socket (fun c -> C.rpc_traced c req) in
  (* deterministic request sequence *)
  let first_id, first_reply = rpc_traced (compile "sieve") in
  (match first_reply with
  | Ok _ -> ()
  | Error e -> fail "sieve: %a" P.pp_served_error e);
  (match rpc (compile "sieve") with
  | Ok _ -> ()
  | Error e -> fail "sieve repeat: %a" P.pp_served_error e);
  let served_matrix =
    match rpc (compile "matrix_1") with
    | Ok text -> text
    | Error e -> fail "matrix_1: %a" P.pp_served_error e
  in
  (match rpc (compile ~chaos:3 "sieve") with
  | Error (P.Compile_failed _) -> ()
  | Ok _ -> fail "chaos-poisoned request succeeded"
  | Error e -> fail "chaos-poisoned request: %a" P.pp_served_error e);
  (* telemetry-on byte identity vs the one-shot pipeline *)
  if served_matrix <> oneshot "matrix_1" then
    fail "served matrix_1 differs from the one-shot compile under telemetry";
  (* golden exposition *)
  let st = rpc P.Stats in
  let prom = mask (Trips_serve.Expo.render_prom st) in
  if write_golden then begin
    write_file golden_path prom;
    Fmt.pr "telemetry-check: wrote %s@." golden_path
  end
  else begin
    if not (Sys.file_exists golden_path) then
      fail "golden %s missing (run with --write-golden)" golden_path;
    let want = read_file golden_path in
    if prom <> want then begin
      Fmt.epr "telemetry-check: masked exposition diverges from %s@."
        golden_path;
      Fmt.epr "---- got ----@.%s---- want ----@.%s" prom want;
      exit 1
    end
  end;
  (* trace replay: well-formed span tree with the synthesized frame *)
  (match first_id with
  | None -> fail "client minted no request id"
  | Some id -> (
    match rpc (P.Trace_of id) with
    | None -> fail "trace %s not in the daemon ring" id
    | Some tr ->
      (match Telemetry.check tr with
      | Ok () -> ()
      | Error m -> fail "trace %s malformed: %s" id m);
      if tr.Telemetry.tr_outcome <> "ok" then
        fail "trace %s outcome %s" id tr.Telemetry.tr_outcome;
      let frame =
        List.filteri (fun i _ -> i < 3) tr.Telemetry.tr_spans
        |> List.map (fun (sp : Telemetry.span) -> sp.Telemetry.sp_name)
      in
      if frame <> [ "request"; "queue-wait"; "execute" ] then
        fail "trace %s frame spans are %a" id
          Fmt.(Dump.list string)
          frame;
      if List.length tr.Telemetry.tr_spans <= 3 then
        fail "trace %s has no instrumentation spans" id));
  (* escape hatch: byte identity and a silent window *)
  Unix.putenv Telemetry.hatch "1";
  (match rpc (compile "vadd") with
  | Ok text ->
    if text <> oneshot "vadd" then
      fail "served vadd differs from the one-shot compile under the hatch"
  | Error e -> fail "vadd under the hatch: %a" P.pp_served_error e);
  let st' = rpc P.Stats in
  let module W = Telemetry.Window in
  if
    W.counter_value st'.P.st_window "serve.req.ok"
    <> W.counter_value st.P.st_window "serve.req.ok"
  then fail "hatched request leaked into the rolling window";
  Unix.putenv Telemetry.hatch "";
  rpc P.Shutdown;
  S.wait srv;
  Fmt.pr
    "telemetry-check: golden exposition, byte identity (telemetry on and \
     hatched), trace replay: OK@."
