(* bench_diff — compare a freshly generated BENCH_*.json against the
   committed baseline, with tolerance.

     bench_diff BASELINE FRESH [TOLERANCE]

   Wall clocks vary across machines, so this is a warn-only gate: it
   always exits 0 unless a file is unreadable (exit 2).  Scalars are
   paired by their config-name context and key, so added or removed
   config rows and unknown keys — the bench shape evolving ahead of the
   committed baseline — produce warnings naming the unmatched fields
   instead of a hard failure; the shared fields are still compared.

   Rules, keyed on field names (no JSON library in the tree, so scalar
   "key": value pairs are extracted positionally with a regex — the
   bench writers emit a fixed field order, which also makes positional
   pairing sound):

   - timings (keys ending in [_s] or named [wall_s]): warn when the
     fresh value exceeds baseline * (1 + tolerance); default tolerance
     0.5, override with the third argument.
   - speedups / rates: warn when fresh < baseline / (1 + tolerance).
   - error bounds (keys containing [error] or [bound]): lower is
     better — warn when the fresh value exceeds baseline * (1 +
     tolerance) by more than a small epsilon (a bound of 0 staying 0 is
     the healthy case, unlike a counter).
   - counters (everything else numeric): warn when a nonzero baseline
     collapsed to zero — a fast path that stopped firing is a
     regression even when the wall clock looks fine.
   - booleans (e.g. identical_outputs): warn when the fresh run turned
     a true into a false. *)

type value =
  | Num of float
  | Bool of bool

(* latest "name": "..." string seen before a scalar, for readable
   warnings (the BENCH files label each config with a name field) *)
type scalar = { context : string; key : string; v : value }

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Some s
  with Sys_error _ -> None

let scalar_re =
  Re.compile
    (Re.alt
       [
         Re.seq
           [
             Re.char '"';
             Re.group (Re.rep1 (Re.alt [ Re.alnum; Re.char '_' ]));
             Re.char '"';
             Re.rep Re.space;
             Re.char ':';
             Re.rep Re.space;
             Re.group
               (Re.alt
                  [
                    Re.seq
                      [
                        Re.opt (Re.char '-');
                        Re.rep1 (Re.alt [ Re.digit; Re.char '.' ]);
                      ];
                    Re.str "true";
                    Re.str "false";
                  ]);
           ];
         Re.seq
           [
             Re.str "\"name\"";
             Re.rep Re.space;
             Re.char ':';
             Re.rep Re.space;
             Re.char '"';
             Re.group (Re.rep (Re.compl [ Re.char '"' ]));
             Re.char '"';
           ];
       ])

let scalars src =
  let context = ref "top-level" in
  Re.all scalar_re src
  |> List.filter_map (fun g ->
         if Re.Group.test g 3 then begin
           context := Re.Group.get g 3;
           None
         end
         else
           let key = Re.Group.get g 1 in
           let raw = Re.Group.get g 2 in
           let v =
             match raw with
             | "true" -> Bool true
             | "false" -> Bool false
             | n -> Num (float_of_string n)
           in
           Some { context = !context; key; v })

let contains key sub = Re.execp (Re.compile (Re.str sub)) key

let is_timing key =
  (* stddev is a noise measure, not a cost — the collapse rule is the
     only one that makes sense for it, so it falls through to counters *)
  (not (contains key "stddev"))
  && (key = "wall_s" || (String.length key > 2 && Filename.check_suffix key "_s"))

let is_higher_better key =
  contains key "speedup" || contains key "rate" || contains key "rps"
  || contains key "throughput"

(* measured error/drift bounds and SLO breach counts: a rise past
   tolerance means an approximation (or the service's health) got worse
   even if every wall clock improved.  [slo_degraded] needs no rule of
   its own: the bench arms the sentinel so the burst must flip it, and
   the boolean true -> false rule catches a sentinel that stopped
   firing. *)
let is_lower_better key =
  contains key "error" || contains key "bound" || contains key "breach"

let () =
  let usage () =
    prerr_endline "usage: bench_diff BASELINE FRESH [TOLERANCE]";
    exit 2
  in
  let baseline_path, fresh_path, tol =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 0.5)
    | [ _; b; f; t ] -> (b, f, float_of_string t)
    | _ -> usage ()
  in
  let load path =
    match read_file path with
    | Some s -> s
    | None ->
      Fmt.epr "bench-diff: cannot read %s@." path;
      exit 2
  in
  let base = scalars (load baseline_path) in
  let fresh = scalars (load fresh_path) in
  let warnings = ref 0 in
  let warn fmt =
    incr warnings;
    Fmt.epr ("bench-diff: WARNING: " ^^ fmt ^^ "@.")
  in
  let compare_pair b f =
    match (b.v, f.v) with
    | Bool bb, Bool fb ->
      if bb && not fb then warn "%s/%s flipped true -> false" f.context f.key
    | Num bn, Num fn ->
      if is_timing b.key then begin
        if fn > (bn *. (1.0 +. tol)) +. 0.05 then
          warn "%s/%s slowed: %.3f -> %.3f (tolerance %.0f%%)" f.context f.key
            bn fn (100.0 *. tol)
      end
      else if is_lower_better b.key then begin
        if fn > (bn *. (1.0 +. tol)) +. 0.005 then
          warn "%s/%s worsened: %.4f -> %.4f (tolerance %.0f%%)" f.context
            f.key bn fn (100.0 *. tol)
      end
      else if is_higher_better b.key then begin
        if fn < (bn /. (1.0 +. tol)) -. 0.05 then
          warn "%s/%s dropped: %.3f -> %.3f (tolerance %.0f%%)" f.context
            f.key bn fn (100.0 *. tol)
      end
      else if bn > 0.0 && fn = 0.0 then
        warn "%s/%s counter collapsed to 0 (baseline %.0f)" f.context f.key bn
    | _ -> warn "%s/%s changed type" f.context f.key
  in
  (* Pair scalars by context/key label, positionally within a label for
     the rare repeated field.  A label present in only one file is an
     added or removed config row or an unknown key — the bench shape
     evolved ahead of the committed baseline — which warns (naming the
     field) instead of hard-failing; the shared fields still compare. *)
  let label s = s.context ^ "/" ^ s.key in
  let pending : (string, scalar Queue.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let q =
        match Hashtbl.find_opt pending (label f) with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add pending (label f) q;
          q
      in
      Queue.push f q)
    fresh;
  let matched : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let compared = ref 0 in
  List.iter
    (fun b ->
      match Hashtbl.find_opt pending (label b) with
      | Some q when not (Queue.is_empty q) ->
        let f = Queue.pop q in
        Hashtbl.replace matched (label b)
          (1 + Option.value ~default:0 (Hashtbl.find_opt matched (label b)));
        incr compared;
        compare_pair b f
      | _ ->
        warn "%s present only in baseline %s (removed row or key)" (label b)
          baseline_path)
    base;
  (* leftover fresh occurrences, reported in file order: the queue pops
     matched the first [matched] occurrences of each label *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let l = label f in
      let k = Option.value ~default:0 (Hashtbl.find_opt seen l) in
      Hashtbl.replace seen l (k + 1);
      if k >= Option.value ~default:0 (Hashtbl.find_opt matched l) then
        warn "%s present only in fresh %s (added row or key)" l fresh_path)
    fresh;
  if !warnings = 0 then
    Fmt.pr "bench-diff: %s vs %s: %d field(s) within tolerance@."
      baseline_path fresh_path !compared
  else
    Fmt.pr
      "bench-diff: %s vs %s: %d field(s) compared, %d warning(s) (warn-only, \
       not failing)@."
      baseline_path fresh_path !compared !warnings
