(* serve_smoke — end-to-end gate for the resident compile service.

   Starts a daemon on a private socket, then asserts, over real client
   connections:

   - N compile requests (repeated sources) all succeed, and repeats are
     byte-identical to the first answer (the output store may not change
     bytes);
   - a served compile equals the one-shot pipeline's report text
     byte for byte;
   - a chaos-poisoned request fails with a structured compile error
     naming the injection, and its crash is confined (the next request
     on the same connection succeeds);
   - a past-deadline request on a source the stores have not seen
     answers timed-out without wedging the pool;
   - the stats reply accounts for all of the above (completions, one
     crash, one timeout, output-store hits);
   - shutdown acks, drains, removes the socket, and refuses new
     connections.

   Exit 0 on success, 1 with a message on the first violated check. *)

module C = Trips_serve.Client
module P = Trips_serve.Protocol
module S = Trips_serve.Server

let fail fmt = Fmt.kstr (fun m -> Fmt.epr "serve-smoke: FAIL: %s@." m; exit 1) fmt

let compile ?deadline ?chaos name =
  P.Compile
    {
      P.cs_workload = name;
      cs_ordering = "iupo-merged";
      cs_policy = "bf";
      cs_backend = true;
      cs_verify = false;
      cs_deadline_s = deadline;
      cs_chaos_seed = chaos;
    }

let () =
  (* the window-accounting checks below need telemetry on *)
  Unix.putenv Trips_obs.Telemetry.hatch "";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ()) "chfc-serve-smoke.sock"
  in
  let srv = S.start ~workers:2 ~queue_depth:4 ~quiet:true ~socket () in
  let names = [ "sieve"; "vadd"; "matrix_1"; "sieve"; "vadd"; "sieve" ] in
  let first : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let first_req_id = ref None in
  List.iteri
    (fun i name ->
      let id, reply =
        C.with_conn ~socket (fun c -> C.rpc_traced c (compile name))
      in
      if !first_req_id = None then first_req_id := id;
      match reply with
      | Error e -> fail "request %d (%s): %a" i name P.pp_served_error e
      | Ok text -> (
        match Hashtbl.find_opt first name with
        | None -> Hashtbl.replace first name text
        | Some prev ->
          if prev <> text then
            fail "repeat of %s is not byte-identical to its first answer"
              name))
    names;
  (* served bytes = one-shot pipeline bytes *)
  (match Trips_workloads.Micro.by_name "sieve" with
  | None -> fail "workload sieve missing"
  | Some w -> (
    match
      Trips_serve.Worker.compile_report ~ordering:Chf.Phases.Iupo_merged
        ~config:Chf.Policy.edge_default ~backend:true ~verify:false w
    with
    | Error m -> fail "one-shot compile failed: %s" m
    | Ok (_, oneshot) ->
      if Hashtbl.find first "sieve" <> oneshot then
        fail "served sieve differs from the one-shot compile"));
  (* chaos-poisoned request: structured failure, confined to its job *)
  C.with_conn ~socket (fun c ->
      (match C.rpc c (compile ~chaos:3 "sieve") with
      | Ok _ -> fail "chaos-poisoned request succeeded"
      | Error (P.Compile_failed m) ->
        let has_chaos = Re.execp (Re.compile (Re.str "chaos")) m in
        if not has_chaos then fail "chaos failure does not name chaos: %s" m
      | Error e -> fail "chaos-poisoned request: %a" P.pp_served_error e);
      (* same connection, next request must be fine *)
      match C.rpc c (compile "sieve") with
      | Ok text ->
        if text <> Hashtbl.find first "sieve" then
          fail "request after a crash is not byte-identical"
      | Error e -> fail "request after a crash: %a" P.pp_served_error e);
  (* past-deadline request on an unseen source *)
  (match
     C.with_conn ~socket (fun c -> C.rpc c (compile ~deadline:1e-6 "gzip_1"))
   with
  | Error (P.Timed_out _) -> ()
  | Ok _ -> fail "past-deadline request succeeded"
  | Error e -> fail "past-deadline request: %a" P.pp_served_error e);
  (* the pool is not wedged: the timed-out source compiles when allowed *)
  (match C.with_conn ~socket (fun c -> C.rpc c (compile "gzip_1")) with
  | Ok _ -> ()
  | Error e -> fail "compile after a timeout: %a" P.pp_served_error e);
  (* the stats reply accounts for the above *)
  let st = C.with_conn ~socket (fun c -> C.rpc c P.Stats) in
  if st.P.st_version <> P.version then fail "stats version mismatch";
  if st.P.st_crashed < 1 then fail "stats: no crash recorded";
  if st.P.st_timed_out < 1 then fail "stats: no timeout recorded";
  if st.P.st_pending <> 0 then fail "stats: %d jobs still pending" st.P.st_pending;
  let output =
    List.find (fun s -> s.P.sc_name = "serve.output") st.P.st_stores
  in
  if output.P.sc_hits = 0 then fail "output store never hit on repeats";
  (* rolling-window accounting: every request appears exactly once, under
     its outcome class, and the window agrees with the lifetime counters
     (the whole smoke fits inside the 30s window) *)
  let module W = Trips_obs.Telemetry.Window in
  let w = st.P.st_window in
  let ok = W.counter_value w "serve.req.ok"
  and crashed = W.counter_value w "serve.req.crashed"
  and timed_out = W.counter_value w "serve.req.timed_out" in
  (* 6 listed + 1 after-crash + 1 after-timeout compiles succeeded *)
  if ok <> List.length names + 2 then
    fail "window: %d ok requests, expected %d" ok (List.length names + 2);
  if crashed <> st.P.st_crashed then
    fail "window: %d crashed vs %d lifetime" crashed st.P.st_crashed;
  if timed_out <> st.P.st_timed_out then
    fail "window: %d timed out vs %d lifetime" timed_out st.P.st_timed_out;
  if ok + crashed + timed_out <> st.P.st_submitted then
    fail "window: classes sum to %d, %d submitted"
      (ok + crashed + timed_out)
      st.P.st_submitted;
  (match W.quantiles w "serve.latency_s" with
  | Some q ->
    if q.W.q_count <> st.P.st_submitted then
      fail "window: %d latency samples, %d submitted" q.W.q_count
        st.P.st_submitted
  | None -> fail "window: no latency histogram");
  if st.P.st_degraded then fail "degraded with no SLO armed";
  (* full request reconstruction: the first compile's trace is in the
     ring, well-formed, with the right outcome *)
  (match !first_req_id with
  | None -> fail "client minted no request id"
  | Some id -> (
    match C.with_conn ~socket (fun c -> C.rpc c (P.Trace_of id)) with
    | None -> fail "trace %s not retrievable" id
    | Some tr ->
      if tr.Trips_obs.Telemetry.tr_outcome <> "ok" then
        fail "trace %s outcome %s, expected ok" id
          tr.Trips_obs.Telemetry.tr_outcome;
      (match Trips_obs.Telemetry.check tr with
      | Ok () -> ()
      | Error m -> fail "trace %s malformed: %s" id m)));
  (* graceful shutdown: ack, drain, socket removed, connections refused *)
  C.with_conn ~socket (fun c -> C.rpc c P.Shutdown);
  S.wait srv;
  if Sys.file_exists socket then fail "socket %s survived shutdown" socket;
  (match C.connect ~socket with
  | conn ->
    C.close conn;
    fail "daemon still accepting after shutdown"
  | exception Unix.Unix_error _ -> ());
  Fmt.pr
    "serve-smoke: %d requests, crash isolation, deadline, stats, window \
     accounting, trace reconstruction, byte identity, clean shutdown: OK@."
    (List.length names)
