(* chfc — the convergent-hyperblock-formation compiler driver.

   Compile a named workload under a phase ordering and policy, optionally
   dump the CFG before/after, and run the functional and cycle-level
   simulators.

     chfc list
     chfc compile sieve --ordering iupo-merged --policy bf --dump
     chfc compile bzip2_3 --policy df --no-backend
     chfc compile sieve --verify          (re-check after every phase)
     chfc chaos 42 --workload sieve       (fault-injection suite)
     chfc table1 [--workload NAME ...]   (and table2 / table3 / figure7) *)

open Cmdliner
open Trips_workloads
open Trips_harness

(* keep the alias: Workload.make is used by compile-file *)

(* name resolution lives with the serve worker role, so the daemon and
   the one-shot CLI accept exactly the same names *)
let find_workload = Trips_serve.Worker.find_workload
let ordering_of_string = Trips_serve.Worker.ordering_of_name
let policy_of_string = Trips_serve.Worker.policy_of_name

(* ---- observability plumbing ------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record one JSON object per formation/optimizer decision into \
           $(docv) (JSON Lines, stable field order).  Events are sorted by \
           their (cell, seq) coordinate, so the stream is identical for \
           every $(b,--jobs) setting.")

let chrome_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Record stage spans and decision events with wall-clock \
           timestamps and write them to $(docv) in Chrome trace-event \
           format (open in chrome://tracing or Perfetto).  Unlike \
           $(b,--trace), the output carries real timings and is not \
           deterministic across runs.")

let no_provenance_arg =
  Arg.(
    value & flag
    & info [ "no-provenance" ]
        ~doc:
          "Disable lineage tagging (the provenance layer behind `chfc \
           report`).  Compiled output is byte-identical either way; the \
           switch exists to prove that and to shave the tagging cost.")

let apply_provenance no_provenance =
  if no_provenance then Trips_ir.Lineage.set_enabled false

(* ---- speculative formation trials -------------------------------------- *)

let spec_trials_arg =
  Arg.(
    value & opt int 0
    & info [ "spec-trials" ] ~docv:"K"
        ~doc:
          "Trial-merge the next $(docv) pool candidates speculatively on \
           a resident worker pool while formation evaluates the head \
           candidate.  Outputs (CFG, stats, traces) are byte-identical to \
           the sequential path; only wall-clock changes.  0 (the default) \
           disables speculation.")

(* Install a resident pool and formation's speculation scheduler for the
   rest of the process.  [jobs] counts working domains in total — the
   formation loop helps drain the queue at join time, acting as the
   pool's +1 worker — so the pool gets [jobs - 1] resident domains.
   When [jobs] is absent or <= 0 it defaults to one domain per core,
   minus one for the main loop. *)
let apply_speculation ?jobs spec_trials =
  if spec_trials > 0 then begin
    let jobs =
      match jobs with
      | Some j when j > 0 -> j
      | _ -> max 1 (Domain.recommended_domain_count () - 1)
    in
    let pool = Engine.Pool.create ~workers:(max 0 (jobs - 1)) () in
    Chf.Formation.set_spec_trials spec_trials;
    Chf.Formation.set_scheduler (Some (Engine.formation_scheduler pool));
    at_exit (fun () ->
        Chf.Formation.set_scheduler None;
        Engine.Pool.shutdown pool)
  end

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, print the metrics registry (formation, optimizer, \
           cache, simulator counters) as a table.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the metrics registry to $(docv) as sorted JSON.")

let write_text_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* Wrap a command body in trace/metrics capture.  Tracing is off unless
   [--trace] or [--chrome-trace] was given, so untraced runs pay one
   atomic load per would-be event.  Spans (wall-clock stage timings) are
   collected only for [--chrome-trace]: mixing them into the [--trace]
   JSONL stream would break its cross-run determinism. *)
let with_obs trace chrome metrics metrics_json f =
  Trips_obs.Metrics.reset ();
  let tracing = trace <> None || chrome <> None in
  if tracing then Trips_obs.Trace.start ~spans:(chrome <> None) ();
  let finish_trace () =
    if tracing then begin
      let evs = Trips_obs.Trace.stop () in
      (match trace with
      | None -> ()
      | Some path ->
        let buf = Buffer.create 4096 in
        List.iter
          (fun ev ->
            Buffer.add_string buf (Trips_obs.Trace.to_json ev);
            Buffer.add_char buf '\n')
          evs;
        write_text_file path (Buffer.contents buf);
        Fmt.pr "trace: %d event(s) written to %s@." (List.length evs) path);
      match chrome with
      | None -> ()
      | Some path ->
        write_text_file path (Trips_obs.Trace.to_chrome_json evs ^ "\n");
        Fmt.pr "chrome trace: %d event(s) written to %s@." (List.length evs)
          path
    end
  in
  match f () with
  | v ->
    finish_trace ();
    let snap = Trips_obs.Metrics.snapshot () in
    if metrics then Fmt.pr "%a@." Trips_obs.Metrics.render snap;
    (match metrics_json with
    | Some path -> write_text_file path (Trips_obs.Metrics.to_json snap ^ "\n")
    | None -> ());
    v
  | exception e ->
    if tracing then ignore (Trips_obs.Trace.stop ());
    raise e

(* ---- list ------------------------------------------------------------- *)

let list_cmd =
  let doc = "List available workloads." in
  let run () =
    Fmt.pr "microbenchmarks (Tables 1-2):@.";
    List.iter
      (fun w -> Fmt.pr "  %-16s %s@." w.Workload.name w.Workload.description)
      Micro.all;
    Fmt.pr "@.store-dense stress kernels (bench formation, pre-filter):@.";
    List.iter
      (fun w -> Fmt.pr "  %-16s %s@." w.Workload.name w.Workload.description)
      Micro.store_dense;
    Fmt.pr "@.SPEC-like programs (Table 3):@.";
    List.iter (fun w -> Fmt.pr "  %s@." w.Workload.name) Spec_like.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- compile ---------------------------------------------------------- *)

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

(* The report text itself is rendered by the serve worker
   (Trips_serve.Worker.compile_report) and printed verbatim, so the
   daemon's served replies and the one-shot CLI output are the same
   bytes by construction.  Only the side outputs (dump, emit-asm,
   emit-dot) live here. *)
let compile_workload_report ?(sim_sample = 0) w ordering config dump backend
    verify emit_asm emit_dot =
  match
    Trips_serve.Worker.compile_report ~ordering ~config ~backend ~verify w
  with
  | Error msg ->
    Fmt.epr "chfc: %s@." msg;
    exit 1
  | Ok (c, text) ->
    if dump then Fmt.pr "%a@.@." Trips_ir.Cfg.pp c.Pipeline.cfg;
    (match emit_asm with
    | Some path ->
      write_file path (Trips_regalloc.Tasm.to_string c.Pipeline.cfg);
      Fmt.pr "assembly        : written to %s@." path
    | None -> ());
    (match emit_dot with
    | Some path ->
      write_file path (Trips_ir.Dot.to_string c.Pipeline.cfg);
      Fmt.pr "dot graph       : written to %s@." path
    | None -> ());
    print_string text;
    (* the sampled run is an extra line after the exact report, so the
       default output stays byte-identical with and without the flag *)
    if sim_sample >= 2 then begin
      let r = Pipeline.run_cycles ~sample:sim_sample c in
      let exact = Pipeline.run_cycles c in
      Fmt.pr
        "sampled sim     : %d cycles (exact %d, 1/%d of converged instances \
         timed, measured error bound %.4f)@."
        r.Trips_sim.Cycle_sim.cycles exact.Trips_sim.Cycle_sim.cycles
        sim_sample
        (Option.value ~default:0.0 r.Trips_sim.Cycle_sim.sample_error_bound)
    end

let compile_run name ordering policy dump backend verify emit_asm emit_dot
    sim_sample spec_trials no_provenance trace chrome metrics metrics_json =
  match
    (find_workload name, ordering_of_string ordering, policy_of_string policy)
  with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
    Fmt.epr "chfc: %s@." m;
    exit 2
  | Ok w, Ok ordering, Ok config ->
    apply_provenance no_provenance;
    apply_speculation spec_trials;
    with_obs trace chrome metrics metrics_json (fun () ->
        compile_workload_report ~sim_sample w ordering config dump backend
          verify emit_asm emit_dot)

(* compile a kernel from a source file; parameters default to 0 unless
   given as name=value *)
let compile_file_run path ordering policy dump backend verify emit_asm emit_dot
    args memory_words unroll spec_trials no_provenance trace chrome metrics
    metrics_json =
  match (ordering_of_string ordering, policy_of_string policy) with
  | Error (`Msg m), _ | _, Error (`Msg m) ->
    Fmt.epr "chfc: %s@." m;
    exit 2
  | Ok ordering, Ok config -> (
    let parsed =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let src = really_input_string ic len in
        close_in ic;
        Ok (Trips_lang.Inline.program_of_unit (Trips_lang.Parser.parse_unit src))
      with
      | Trips_lang.Parser.Parse_error m -> Error m
      | Trips_lang.Inline.Not_inlinable m -> Error m
    in
    match parsed with
    | Error m ->
      Fmt.epr "chfc: %s: %s@." path m;
      exit 2
    | Ok program ->
      let parsed_args =
        List.map
          (fun spec ->
            match String.split_on_char '=' spec with
            | [ name; v ] -> (name, int_of_string v)
            | _ -> Fmt.failwith "bad --arg %S (expected name=value)" spec)
          args
      in
      let w =
        Workload.make ~name:program.Trips_lang.Ast.prog_name
          ~description:("kernel from " ^ path)
          ~args:parsed_args ~memory_words ~frontend_unroll:unroll program
      in
      apply_provenance no_provenance;
      apply_speculation spec_trials;
      with_obs trace chrome metrics metrics_json (fun () ->
          compile_workload_report w ordering config dump backend verify
            emit_asm emit_dot))

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Re-check structural invariants and the functional checksum after \
           every formation phase; exit non-zero naming the first phase that \
           breaks.")

let emit_asm_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-asm" ] ~docv:"FILE" ~doc:"Write TRIPS assembly to $(docv).")

let emit_dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-dot" ] ~docv:"FILE" ~doc:"Write a Graphviz CFG to $(docv).")

let compile_cmd =
  let doc = "Compile a workload and report simulation results." in
  let workload_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let ordering =
    Arg.(
      value
      & opt string "iupo-merged"
      & info [ "ordering"; "o" ] ~docv:"ORDERING"
          ~doc:"Phase ordering: bb, upio, iupo, iup-o, iupo-merged.")
  in
  let policy =
    Arg.(
      value & opt string "bf"
      & info [ "policy"; "p" ] ~docv:"POLICY"
          ~doc:"Block-selection policy: bf, df, vliw.")
  in
  let dump =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the compiled CFG.")
  in
  let backend =
    Arg.(
      value & opt bool true
      & info [ "backend" ] ~docv:"BOOL"
          ~doc:"Run register allocation and fanout insertion.")
  in
  let sim_sample =
    Arg.(
      value & opt int 0
      & info [ "sim-sample" ] ~docv:"N"
          ~doc:
            "Additionally run the timing model in sampled mode: once a \
             block signature has converged, time only every $(docv)-th \
             instance and extrapolate the rest.  Prints one extra line \
             with the sampled cycle count and the measured error bound; \
             the exact report above it is unchanged.  Needs $(docv) >= 2; \
             0 (the default) disables it.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const compile_run $ workload_arg $ ordering $ policy $ dump $ backend
      $ verify_arg $ emit_asm_arg $ emit_dot_arg $ sim_sample
      $ spec_trials_arg $ no_provenance_arg $ trace_arg $ chrome_trace_arg
      $ metrics_arg $ metrics_json_arg)

let compile_file_cmd =
  let doc = "Compile a kernel source file (see `chfc syntax`)." in
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let ordering =
    Arg.(
      value
      & opt string "iupo-merged"
      & info [ "ordering"; "o" ] ~docv:"ORDERING"
          ~doc:"Phase ordering: bb, upio, iupo, iup-o, iupo-merged.")
  in
  let policy =
    Arg.(
      value & opt string "bf"
      & info [ "policy"; "p" ] ~docv:"POLICY" ~doc:"bf, df or vliw.")
  in
  let dump = Arg.(value & flag & info [ "dump" ] ~doc:"Print the compiled CFG.") in
  let backend =
    Arg.(value & opt bool true & info [ "backend" ] ~docv:"BOOL" ~doc:"Run the back end.")
  in
  let args =
    Arg.(
      value & opt_all string []
      & info [ "arg" ] ~docv:"NAME=VALUE" ~doc:"Kernel parameter binding.")
  in
  let memory_words =
    Arg.(value & opt int 4096 & info [ "memory" ] ~docv:"WORDS" ~doc:"Data memory size.")
  in
  let unroll =
    Arg.(
      value & opt int 4
      & info [ "unroll" ] ~docv:"N" ~doc:"Front-end for-loop unroll factor.")
  in
  Cmd.v
    (Cmd.info "compile-file" ~doc)
    Term.(
      const compile_file_run $ path_arg $ ordering $ policy $ dump $ backend
      $ verify_arg $ emit_asm_arg $ emit_dot_arg $ args $ memory_words $ unroll
      $ spec_trials_arg $ no_provenance_arg $ trace_arg $ chrome_trace_arg
      $ metrics_arg $ metrics_json_arg)

(* ---- chaos ------------------------------------------------------------- *)

(* Compile a workload, then inject every fault class into the result and
   check the verifier catches each one.  Exit 1 on any escape: that is a
   verifier gap, not a compiler bug. *)
let chaos_run seed name ordering policy =
  match
    (find_workload name, ordering_of_string ordering, policy_of_string policy)
  with
  | Error (`Msg m), _, _ | _, Error (`Msg m), _ | _, _, Error (`Msg m) ->
    Fmt.epr "chfc: %s@." m;
    exit 2
  | Ok w, Ok ordering, Ok config ->
    let c = Pipeline.compile ~config ~backend:false ordering w in
    Fmt.pr "chaos suite: %s under %s, seed %d@." w.Workload.name
      (Chf.Phases.name ordering) seed;
    let outcomes =
      Trips_verify.Chaos.run_suite ~seed ~registers:c.Pipeline.registers
        ~fresh_memory:(fun () -> Workload.memory w)
        c.Pipeline.cfg
    in
    List.iter
      (fun o -> Fmt.pr "  %a@." Trips_verify.Chaos.pp_outcome o)
      outcomes;
    let gaps = Trips_verify.Chaos.undetected outcomes in
    if gaps = [] then
      Fmt.pr "all %d injected fault classes detected@." (List.length outcomes)
    else begin
      Fmt.epr "chfc: %d fault class(es) escaped the verifier@."
        (List.length gaps);
      exit 1
    end

let chaos_cmd =
  let doc =
    "Run the seeded fault-injection suite against a compiled workload."
  in
  let seed_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"SEED")
  in
  let workload =
    Arg.(
      value & opt string "sieve"
      & info [ "workload"; "w" ] ~docv:"NAME" ~doc:"Victim workload.")
  in
  let ordering =
    Arg.(
      value
      & opt string "iupo-merged"
      & info [ "ordering"; "o" ] ~docv:"ORDERING"
          ~doc:"Phase ordering: bb, upio, iupo, iup-o, iupo-merged.")
  in
  let policy =
    Arg.(
      value & opt string "bf"
      & info [ "policy"; "p" ] ~docv:"POLICY" ~doc:"bf, df or vliw.")
  in
  Cmd.v
    (Cmd.info "chaos" ~doc)
    Term.(const chaos_run $ seed_arg $ workload $ ordering $ policy)

(* ---- fuzz -------------------------------------------------------------- *)

let fuzz_run seed count time_budget minimize case_deadline json_out corpus_out
    replay_dir jobs spec_trials =
  let open Trips_fuzz in
  apply_speculation ~jobs spec_trials;
  let finish report =
    Fmt.pr "%a" Fuzzer.pp_report report;
    (match json_out with
    | Some path -> write_text_file path (Fuzzer.report_json report ^ "\n")
    | None -> ());
    if report.Fuzzer.r_findings <> [] then exit 1
  in
  match replay_dir with
  | Some dir -> (
    match Fuzzer.replay ~dir with
    | Error m ->
      Fmt.epr "chfc: fuzz: %s@." m;
      exit 2
    | Ok report -> finish report)
  | None ->
    let progress i =
      if count >= 200 && (i + 1) mod 100 = 0 then
        Fmt.epr "fuzz: %d/%d cases...@." (i + 1) count
    in
    finish
      (Fuzzer.run ~seed ~count ?time_budget_s:time_budget ~minimize
         ?corpus_out ~case_deadline_s:case_deadline ~progress ())

let fuzz_cmd =
  let doc =
    "Adversarial CFG fuzzing with a differential oracle: generated hard \
     cases run through the full pipeline, every phase is verified, the \
     fast path is checked against the all-hatches-off path, and the \
     compiled result must match the input's functional checksum.  \
     Failures are bucketed by triage fingerprint; exits non-zero when any \
     bucket is non-empty."
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.") in
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Cases to run.")
  in
  let time_budget =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop generating new cases once this much wall-clock has elapsed.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Shrink each bucket's first failing case to a minimal reproducer.")
  in
  let case_deadline =
    Arg.(
      value & opt float 10.0
      & info [ "case-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-case watchdog deadline; a case that exceeds it becomes a \
             timeout:* finding instead of wedging the campaign.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the campaign report as JSON to $(docv).")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-out" ] ~docv:"DIR"
          ~doc:"Write a (minimized) reproducer per bucket to $(docv).")
  in
  let replay_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Instead of generating cases, replay every reproducer in $(docv) \
             through the oracle; any failure is a regression.")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains for speculative formation trials (with \
             $(b,--spec-trials)); 0 (the default) means one per core, \
             minus one for the campaign loop.  Case generation and the \
             oracle stay sequential either way.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const fuzz_run $ seed $ count $ time_budget $ minimize $ case_deadline
      $ json_out $ corpus_out $ replay_dir $ jobs $ spec_trials_arg)

(* ---- experiment commands ---------------------------------------------- *)

let workloads_arg =
  Arg.(
    value & opt_all string []
    & info [ "workload"; "w" ] ~docv:"NAME" ~doc:"Restrict to these workloads.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Compile sweep rows on $(docv) domains (0 = one per core). The \
           rendered tables are independent of $(docv); $(b,--jobs 1) is the \
           sequential default.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the staged-compilation prefix cache: re-lower and \
           re-profile every cell instead of sharing the per-workload prefix \
           across configurations. Output is identical either way.")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "After the sweep, print prefix-cache hit/miss counters and \
           cumulative per-stage wall-clock.")

let stage_deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stage-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Bound every pipeline stage of every cell with a $(docv) watchdog \
           deadline.  A cell whose stage exceeds it reports a structured \
           timed-out failure in the table while the other cells complete.  \
           Without this flag no watchdog runs and output is byte-identical \
           to earlier releases.")

let apply_stage_deadline = function
  | None -> ()
  | Some d -> Trips_obs.Watchdog.set_stage_policy ~deadline_s:d ()

(* every experiment shares the jobs/cache plumbing: resolve the flags to
   an engine width and a cache, and optionally report the cache verdict *)
let sweep_env jobs no_cache =
  let jobs = if jobs <= 0 then Engine.default_jobs () else jobs in
  let cache = if no_cache then Stage.disabled () else Stage.create () in
  Stage.reset_timings ();
  (jobs, cache)

let report_cache cache cache_stats =
  if cache_stats then begin
    let s = Stage.stats cache in
    Fmt.pr "@.prefix cache : %d hit(s), %d miss(es), %.0f%% hit rate@."
      s.Stage.cache_hits s.Stage.cache_misses
      (100.0 *. Stage.hit_rate s);
    let k = Stage.store_counters cache in
    Fmt.pr "shared store : %d hit(s), %d miss(es), %d eviction(s), %d/%d \
            entries@."
      k.Trips_store.Store.hits k.Trips_store.Store.misses
      k.Trips_store.Store.evictions k.Trips_store.Store.entries
      k.Trips_store.Store.capacity;
    Fmt.pr "stage timings: %a@." Stage.pp_timings (Stage.timings ())
  end

let micro_selection names =
  match names with
  | [] -> Micro.all
  | names -> List.filter_map Micro.by_name names

let table1_cmd =
  let doc = "Reproduce Table 1 (phase orderings, cycle counts)." in
  let run names jobs no_cache cache_stats deadline trace chrome metrics
      metrics_json =
    apply_stage_deadline deadline;
    with_obs trace chrome metrics metrics_json (fun () ->
        let jobs, cache = sweep_env jobs no_cache in
        Table1.render Fmt.stdout
          (Table1.run ~cache ~jobs ~workloads:(micro_selection names) ());
        report_cache cache cache_stats)
  in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(
      const run $ workloads_arg $ jobs_arg $ no_cache_arg $ cache_stats_arg
      $ stage_deadline_arg $ trace_arg $ chrome_trace_arg $ metrics_arg
      $ metrics_json_arg)

let table2_cmd =
  let doc = "Reproduce Table 2 (block-selection heuristics)." in
  let run names jobs no_cache cache_stats deadline trace chrome metrics
      metrics_json =
    apply_stage_deadline deadline;
    with_obs trace chrome metrics metrics_json (fun () ->
        let jobs, cache = sweep_env jobs no_cache in
        Table2.render Fmt.stdout
          (Table2.run ~cache ~jobs ~workloads:(micro_selection names) ());
        report_cache cache cache_stats)
  in
  Cmd.v (Cmd.info "table2" ~doc)
    Term.(
      const run $ workloads_arg $ jobs_arg $ no_cache_arg $ cache_stats_arg
      $ stage_deadline_arg $ trace_arg $ chrome_trace_arg $ metrics_arg
      $ metrics_json_arg)

let table3_cmd =
  let doc = "Reproduce Table 3 (SPEC-like block counts)." in
  let run names jobs no_cache cache_stats deadline trace chrome metrics
      metrics_json =
    let workloads =
      match names with
      | [] -> Spec_like.all
      | names -> List.filter_map Spec_like.by_name names
    in
    apply_stage_deadline deadline;
    with_obs trace chrome metrics metrics_json (fun () ->
        let jobs, cache = sweep_env jobs no_cache in
        Table3.render Fmt.stdout (Table3.run ~cache ~jobs ~workloads ());
        report_cache cache cache_stats)
  in
  Cmd.v (Cmd.info "table3" ~doc)
    Term.(
      const run $ workloads_arg $ jobs_arg $ no_cache_arg $ cache_stats_arg
      $ stage_deadline_arg $ trace_arg $ chrome_trace_arg $ metrics_arg
      $ metrics_json_arg)

let figure7_cmd =
  let doc = "Reproduce Figure 7 (cycle vs block count reduction)." in
  let run names jobs no_cache cache_stats deadline trace chrome metrics
      metrics_json =
    apply_stage_deadline deadline;
    with_obs trace chrome metrics metrics_json (fun () ->
        let jobs, cache = sweep_env jobs no_cache in
        Figure7.render Fmt.stdout
          (Table1.run ~cache ~jobs ~workloads:(micro_selection names) ());
        report_cache cache cache_stats)
  in
  Cmd.v (Cmd.info "figure7" ~doc)
    Term.(
      const run $ workloads_arg $ jobs_arg $ no_cache_arg $ cache_stats_arg
      $ stage_deadline_arg $ trace_arg $ chrome_trace_arg $ metrics_arg
      $ metrics_json_arg)

(* ---- report ------------------------------------------------------------ *)

let report_cmd =
  let doc =
    "Per-block utilization report: slot usage, useful-instruction ratio, \
     cycle and flush attribution by lineage class, and the formation \
     decisions that shaped each hyperblock."
  in
  let ordering =
    Arg.(
      value
      & opt string "iupo-merged"
      & info [ "ordering"; "o" ] ~docv:"ORDERING"
          ~doc:"Phase ordering: bb, upio, iupo, iup-o, iupo-merged.")
  in
  let policy =
    Arg.(
      value & opt string "bf"
      & info [ "policy"; "p" ] ~docv:"POLICY" ~doc:"bf, df or vliw.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON (stable field order) to $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the text report to $(docv) instead of stdout.")
  in
  let run names ordering policy jobs spec_trials no_cache cache_stats deadline
      json out no_provenance trace chrome metrics metrics_json =
    match (ordering_of_string ordering, policy_of_string policy) with
    | Error (`Msg m), _ | _, Error (`Msg m) ->
      Fmt.epr "chfc: %s@." m;
      exit 2
    | Ok ordering, Ok config ->
      apply_provenance no_provenance;
      apply_speculation ~jobs spec_trials;
      apply_stage_deadline deadline;
      with_obs trace chrome metrics metrics_json (fun () ->
          let jobs, cache = sweep_env jobs no_cache in
          let o =
            Reporter.run ~config ~cache ~jobs ~ordering
              ~workloads:(micro_selection names) ()
          in
          (match out with
          | Some path -> write_text_file path (Fmt.str "%a" Reporter.render o)
          | None -> Reporter.render Fmt.stdout o);
          (match json with
          | Some path ->
            write_text_file path
              (Trips_obs.Report.to_json o.Reporter.reports ^ "\n")
          | None -> ());
          report_cache cache cache_stats;
          if o.Reporter.failures <> [] then exit 1)
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ workloads_arg $ ordering $ policy $ jobs_arg
      $ spec_trials_arg $ no_cache_arg $ cache_stats_arg $ stage_deadline_arg
      $ json_arg $ out_arg $ no_provenance_arg $ trace_arg $ chrome_trace_arg
      $ metrics_arg $ metrics_json_arg)

(* ---- serve / submit / stats / shutdown --------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/chfc-serve.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let with_daemon socket f =
  try Trips_serve.Client.with_conn ~socket f with
  | Unix.Unix_error (e, _, _) ->
    Fmt.epr "chfc: cannot reach daemon at %s: %s@." socket
      (Unix.error_message e);
    exit 2
  | Trips_serve.Protocol.Protocol_error m ->
    Fmt.epr "chfc: protocol error: %s@." m;
    exit 2
  | End_of_file ->
    Fmt.epr "chfc: daemon at %s hung up mid-reply@." socket;
    exit 2

let serve_cmd =
  let doc =
    "Run the resident compilation service: a daemon holding a worker-domain \
     pool and shared content-addressed artifact stores (lower+profile \
     prefixes, rendered outputs), serving compile/report/sweep requests over \
     a Unix-domain socket.  Submit work with $(b,chfc submit); stop it with \
     $(b,chfc shutdown)."
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Resident worker domains (0 = one per core).")
  in
  let queue_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bound on jobs in flight; excess submissions are shed with a \
             structured overload reply (default: 4x workers).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Default per-job watchdog deadline; a request may override it. \
             An expired job answers timed-out without wedging the pool.")
  in
  let store_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "store-capacity" ] ~docv:"N"
          ~doc:"LRU capacity of each shared artifact store.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress daemon log lines.")
  in
  let slo_p99_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:
            "SLO sentinel: flip the daemon degraded when the rolling-window \
             p99 request latency exceeds this many milliseconds.")
  in
  let slo_error_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-error-rate" ] ~docv:"FRACTION"
          ~doc:
            "SLO sentinel: flip the daemon degraded when the rolling-window \
             error fraction (failed + timed out + crashed + shed) exceeds \
             this threshold.")
  in
  let trace_ring =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:
            "Keep the last N finished request traces for $(b,chfc trace) \
             (default 64).")
  in
  let run socket workers queue_depth deadline store_capacity quiet slo_p99_ms
      slo_error_rate trace_ring =
    let workers = if workers <= 0 then None else Some workers in
    let slo_p99_s = Option.map (fun ms -> ms /. 1000.0) slo_p99_ms in
    let t =
      Trips_serve.Server.start ?workers ?queue_depth
        ?default_deadline_s:deadline ?store_capacity ?slo_p99_s
        ?slo_error_rate ?trace_ring ~quiet ~socket ()
    in
    Trips_serve.Server.wait t
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ workers $ queue_depth $ deadline
      $ store_capacity $ quiet $ slo_p99_ms $ slo_error_rate $ trace_ring)

let submit_cmd =
  let doc =
    "Submit work to a running $(b,chfc serve) daemon.  By default compiles \
     one workload and prints the same report $(b,chfc compile) would; \
     $(b,--report) requests a utilization report and $(b,--table) a rendered \
     experiment table over the given (or default) workloads."
  in
  let workloads = Arg.(value & pos_all string [] & info [] ~docv:"WORKLOAD") in
  let ordering =
    Arg.(
      value
      & opt string "iupo-merged"
      & info [ "ordering"; "o" ] ~docv:"ORDERING"
          ~doc:"Phase ordering: bb, upio, iupo, iup-o, iupo-merged.")
  in
  let policy =
    Arg.(
      value & opt string "bf"
      & info [ "policy"; "p" ] ~docv:"POLICY" ~doc:"bf, df or vliw.")
  in
  let backend =
    Arg.(
      value & opt bool true
      & info [ "backend" ] ~docv:"BOOL" ~doc:"Run the back end.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request watchdog deadline override.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:
            "Poison the request: fault-inject the compiled CFG so the job \
             fails inside the worker.  Exercises the daemon's per-job crash \
             isolation; sibling requests are unaffected.")
  in
  let table =
    Arg.(
      value
      & opt (some string) None
      & info [ "table" ] ~docv:"TABLE"
          ~doc:"Request a rendered table: table1, table2, table3 or figure7.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Request a per-block utilization report.")
  in
  let run socket names ordering policy backend verify deadline chaos_seed
      table report =
    let module C = Trips_serve.Client in
    let module P = Trips_serve.Protocol in
    let req_id, outcome =
      with_daemon socket (fun conn ->
          match (table, report) with
          | Some t, _ ->
            C.rpc_traced conn
              (P.Sweep_cell
                 {
                   P.ss_table = t;
                   ss_workloads = names;
                   ss_deadline_s = deadline;
                 })
          | None, true ->
            C.rpc_traced conn
              (P.Report
                 {
                   P.rs_workloads = names;
                   rs_ordering = ordering;
                   rs_policy = policy;
                   rs_deadline_s = deadline;
                 })
          | None, false -> (
            match names with
            | [ name ] ->
              C.rpc_traced conn
                (P.Compile
                   {
                     P.cs_workload = name;
                     cs_ordering = ordering;
                     cs_policy = policy;
                     cs_backend = backend;
                     cs_verify = verify;
                     cs_deadline_s = deadline;
                     cs_chaos_seed = chaos_seed;
                   })
            | _ ->
              Fmt.epr
                "chfc: submit: exactly one WORKLOAD expected (or use \
                 --report / --table)@.";
              exit 2))
    in
    Option.iter (fun id -> Fmt.epr "chfc: request %s@." id) req_id;
    match outcome with
    | Ok text -> print_string text
    | Error e ->
      Fmt.epr "chfc: submit: %a@." P.pp_served_error e;
      exit 1
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ socket_arg $ workloads $ ordering $ policy $ backend
      $ verify_arg $ deadline $ chaos_seed $ table $ report)

let stats_cmd =
  let doc =
    "Print a running daemon's scheduler and artifact-store counters, plus \
     its rolling telemetry window.  $(b,--prom) emits Prometheus text with \
     a stable line order; $(b,--watch) refreshes in place."
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:"Emit the Prometheus-style text exposition instead.")
  in
  let watch =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:"Refresh every SECONDS until interrupted.")
  in
  let render_text (s : Trips_serve.Protocol.stats_payload) =
    let module P = Trips_serve.Protocol in
    let module W = Trips_obs.Telemetry.Window in
    Fmt.pr "daemon      : protocol v%d, up %.1fs, %d worker domain(s)%s@."
      s.P.st_version s.P.st_uptime_s s.P.st_workers
      (if s.P.st_degraded then "  [DEGRADED]" else "");
    Fmt.pr
      "scheduler   : depth %d, pending %d, submitted %d, completed %d, shed \
       %d, timed out %d, crashed %d@."
      s.P.st_queue_depth s.P.st_pending s.P.st_submitted s.P.st_completed
      s.P.st_shed s.P.st_timed_out s.P.st_crashed;
    List.iter
      (fun k ->
        Fmt.pr "%-12s: %d hit(s), %d miss(es), %d eviction(s), %d/%d entries@."
          k.P.sc_name k.P.sc_hits k.P.sc_misses k.P.sc_evictions k.P.sc_entries
          k.P.sc_capacity)
      s.P.st_stores;
    let w = s.P.st_window in
    Fmt.pr "window      : last %.0fs@." w.W.w_span_s;
    List.iter (fun (n, v) -> Fmt.pr "  %-34s %8d@." n v) w.W.w_counters;
    List.iter (fun (n, v) -> Fmt.pr "  %-34s %12.3f  (gauge)@." n v) w.W.w_gauges;
    List.iter
      (fun (n, (q : W.quantiles)) ->
        Fmt.pr "  %-34s n=%-5d p50=%.4f p90=%.4f p99=%.4f@." n q.W.q_count
          q.W.q_p50 q.W.q_p90 q.W.q_p99)
      w.W.w_histograms
  in
  let run socket prom watch =
    let module P = Trips_serve.Protocol in
    let fetch () =
      with_daemon socket (fun conn -> Trips_serve.Client.rpc conn P.Stats)
    in
    let show s =
      if prom then print_string (Trips_serve.Expo.render_prom s)
      else render_text s
    in
    match watch with
    | None -> show (fetch ())
    | Some period ->
      let period = Float.max 0.1 period in
      while true do
        let s = fetch () in
        (* ANSI clear-screen + home, so the display refreshes in place. *)
        print_string "\027[2J\027[H";
        show s;
        Fmt.pr "@?";
        Unix.sleepf period
      done
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ socket_arg $ prom $ watch)

let trace_cmd =
  let doc =
    "Fetch one finished request's span tree from the daemon's bounded trace \
     ring and print it (or export Chrome trace-event JSON with \
     $(b,--chrome)).  Request ids are printed by $(b,chfc submit) on \
     stderr and appear in the daemon log."
  in
  let req_id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUEST-ID" ~doc:"The request id, e.g. req-0f3a9c1d2e4b.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Write the span tree as Chrome trace-event JSON to FILE.")
  in
  let run socket req_id chrome =
    let module P = Trips_serve.Protocol in
    match
      with_daemon socket (fun conn ->
          Trips_serve.Client.rpc conn (P.Trace_of req_id))
    with
    | None ->
      Fmt.epr
        "chfc: trace: no trace for %s (unknown id, or evicted from the \
         ring; raise --trace-ring on the daemon)@."
        req_id;
      exit 1
    | Some tr -> (
      print_string (Trips_obs.Telemetry.render tr);
      match chrome with
      | None -> ()
      | Some file ->
        let oc = open_out file in
        output_string oc (Trips_serve.Expo.trace_to_chrome tr);
        close_out oc;
        Fmt.epr "chfc: wrote %s@." file)
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ socket_arg $ req_id $ chrome)

let shutdown_cmd =
  let doc =
    "Gracefully stop a running daemon: admitted jobs finish, the pool is \
     joined, the socket removed."
  in
  let run socket =
    with_daemon socket (fun conn ->
        Trips_serve.Client.rpc conn Trips_serve.Protocol.Shutdown);
    Fmt.pr "daemon at %s shutting down@." socket
  in
  Cmd.v (Cmd.info "shutdown" ~doc) Term.(const run $ socket_arg)

let () =
  let doc = "convergent hyperblock formation for TRIPS (MICRO 2006 reproduction)" in
  let info = Cmd.info "chfc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; compile_cmd; compile_file_cmd; chaos_cmd; fuzz_cmd;
            report_cmd; table1_cmd; table2_cmd; table3_cmd; figure7_cmd;
            serve_cmd; submit_cmd; stats_cmd; trace_cmd; shutdown_cmd;
          ]))
